// Consensus safety/liveness invariants checked live during a chaos run.
//
// The checker installs itself as the cluster's commit hook and verifies,
// on every committed block:
//   * agreement — no two replicas ever commit different blocks at the same
//     height (crashed replicas cannot commit, so "live" is implicit);
//   * monotone heights — each replica's chain grows by exactly one block
//     per commit, never skipping or rewinding.
// finish() adds the end-of-plan checks:
//   * no-fork-after-heal — all replica chains agree on their common prefix;
//   * liveness-after-heal — some replica commits within `liveness_bound`
//     after the last fault cleared (note_all_clear).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "consensus/cluster.hpp"
#include "sim/simulator.hpp"

namespace tnp::fault {

struct InvariantReport {
  std::uint64_t commits_checked = 0;
  std::vector<std::string> violations;
  std::optional<sim::SimTime> first_commit_after_clear;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string to_string() const;
};

class InvariantChecker {
 public:
  /// Installs itself as `cluster`'s commit hook; the cluster must outlive
  /// the checker.
  InvariantChecker(consensus::Cluster& cluster, sim::Simulator& simulator);
  ~InvariantChecker();
  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// Declares that all faults have cleared as of virtual time `t`; the
  /// liveness-after-heal clock starts here.
  void note_all_clear(sim::SimTime t) { all_clear_ = t; }

  /// Marks replicas as Byzantine: their commits are excluded from every
  /// invariant (an adversary lying to itself proves nothing), the agreement
  /// and fork checks run over honest replicas only, and each honest commit
  /// is additionally re-validated (tx-merkle-root recomputation and parent
  /// linkage against the honest canonical chain) — "no honest replica
  /// commits an invalid block".
  void set_byzantine(std::set<std::size_t> replicas) {
    byzantine_ = std::move(replicas);
  }

  /// End-of-run checks; returns the accumulated report.
  [[nodiscard]] InvariantReport finish(sim::SimTime liveness_bound);

  /// Virtual times of the first commit of each height (cluster-wide) —
  /// the availability metric is derived from the gaps between these.
  [[nodiscard]] const std::vector<sim::SimTime>& height_commit_times() const {
    return height_commit_times_;
  }

 private:
  void on_commit(std::size_t replica, const ledger::Block& block);
  void violation(std::string what);

  consensus::Cluster& cluster_;
  sim::Simulator& simulator_;
  std::vector<std::uint64_t> heights_;  // last committed height per replica
  struct FirstCommit {
    Hash256 hash{};
    std::size_t replica = 0;
  };
  std::unordered_map<std::uint64_t, FirstCommit> canonical_;  // height → first
  std::vector<sim::SimTime> height_commit_times_;
  std::uint64_t commits_checked_ = 0;
  std::vector<std::string> violations_;
  std::optional<sim::SimTime> all_clear_;
  std::optional<sim::SimTime> first_commit_after_clear_;
  std::set<std::size_t> byzantine_;
};

}  // namespace tnp::fault
