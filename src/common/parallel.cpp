#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace tnp {

namespace {

// Workers run with this set so nested parallel_for calls degrade to inline
// execution instead of deadlocking on their own pool.
thread_local bool tls_inside_pool_worker = false;

constexpr std::size_t kMaxWidth = 256;

}  // namespace

std::size_t default_thread_count() {
  if (const char* env = std::getenv("TNP_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed >= 1) {
      return std::min<std::size_t>(static_cast<std::size_t>(parsed), kMaxWidth);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min<std::size_t>(hw, kMaxWidth);
}

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_ready;
  std::deque<std::function<void()>> queue;
  bool stopping = false;
  std::vector<std::thread> workers;

  void worker_loop() {
    tls_inside_pool_worker = true;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mu);
        work_ready.wait(lock, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping and drained
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(std::size_t width)
    : width_(std::clamp<std::size_t>(
          width == 0 ? default_thread_count() : width, 1, kMaxWidth)),
      impl_(new Impl) {
  impl_->workers.reserve(width_ - 1);
  for (std::size_t i = 0; i + 1 < width_; ++i) {
    impl_->workers.emplace_back([impl = impl_] { impl->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->work_ready.notify_all();
  for (auto& worker : impl_->workers) worker.join();
  delete impl_;
}

void ThreadPool::for_chunks(
    std::size_t n, std::size_t min_per_chunk,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  min_per_chunk = std::max<std::size_t>(min_per_chunk, 1);
  const std::size_t chunks =
      std::min(width_, (n + min_per_chunk - 1) / min_per_chunk);
  if (chunks <= 1 || tls_inside_pool_worker) {
    body(0, n);
    return;
  }

  // Contiguous split decided up front: the first n % chunks chunks get one
  // extra index. Chunk c is fully determined by (n, chunks, c), never by
  // scheduling, which is what makes parallel output bit-identical.
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  auto bounds = [&](std::size_t c) {
    const std::size_t begin = c * base + std::min(c, extra);
    return std::pair{begin, begin + base + (c < extra ? 1 : 0)};
  };

  struct Join {
    std::mutex mu;
    std::condition_variable done;
    std::size_t outstanding;
    std::vector<std::exception_ptr> errors;
  };
  Join join{.outstanding = chunks - 1, .errors = {}};
  join.errors.resize(chunks);

  auto run_chunk = [&](std::size_t c) {
    const auto [begin, end] = bounds(c);
    try {
      body(begin, end);
    } catch (...) {
      join.errors[c] = std::current_exception();
    }
  };

  {
    std::lock_guard lock(impl_->mu);
    for (std::size_t c = 1; c < chunks; ++c) {
      impl_->queue.emplace_back([&, c] {
        run_chunk(c);
        std::lock_guard inner(join.mu);
        if (--join.outstanding == 0) join.done.notify_one();
      });
    }
  }
  impl_->work_ready.notify_all();

  run_chunk(0);  // the caller is chunk 0

  {
    std::unique_lock lock(join.mu);
    join.done.wait(lock, [&] { return join.outstanding == 0; });
  }
  for (const auto& err : join.errors) {
    if (err) std::rethrow_exception(err);  // lowest chunk index wins
  }
}

namespace {
std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>();
  return pool;
}
}  // namespace

ThreadPool& global_pool() { return *global_pool_slot(); }

void set_global_thread_count(std::size_t width) {
  auto& slot = global_pool_slot();
  slot.reset();  // join old workers before the replacement spins up
  slot = std::make_unique<ThreadPool>(width);
}

}  // namespace tnp
