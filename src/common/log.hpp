// Minimal leveled logger. Single global sink (stderr by default), cheap
// enough to leave in hot paths at kInfo-off. Format-string free by design:
// callers build strings with operator<< style via Logf's variadic append.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <string_view>

namespace tnp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, std::string_view message);
}

/// log(LogLevel::kInfo, "committed block ", height, " with ", n, " txs");
template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  detail::log_emit(level, oss.str());
}

template <typename... Args>
void log_debug(Args&&... args) {
  log(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  log(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  log(LogLevel::kError, std::forward<Args>(args)...);
}

/// Cumulative hit/suppression counts for one named TNP_LOG_EVERY_N site.
/// `hits` counts every occurrence, admitted or not — rate limiting hides
/// log lines, never the count.
struct LogSiteStats {
  std::uint64_t hits = 0;
  std::uint64_t suppressed = 0;
};

/// All named rate-limited sites hit so far, by site name. A site appears
/// after its first hit (call sites register lazily via function-local
/// statics).
[[nodiscard]] std::map<std::string, LogSiteStats> log_site_stats();
/// Stats for one site (zeros if never hit).
[[nodiscard]] LogSiteStats log_site_stats(std::string_view site);
/// Test hook: zeroes every registered site counter.
void reset_log_site_stats();

namespace detail {
/// Per-call-site admission state for TNP_LOG_EVERY_N. Thread-safe; a plain
/// counter, not a token bucket — 1-in-n is predictable and cheap. Each
/// instance self-registers under its site name so suppressed occurrences
/// stay visible through log_site_stats() even when no line is emitted.
class LogRateLimiter {
 public:
  explicit LogRateLimiter(const char* site);

  /// Admits the 1st, (n+1)th, (2n+1)th… call; `suppressed` receives how many
  /// calls were dropped since the previous admitted one.
  bool admit(std::uint64_t n, std::uint64_t& suppressed) {
    const std::uint64_t count = count_.fetch_add(1, std::memory_order_relaxed);
    if (n <= 1) {
      suppressed = 0;
      return true;
    }
    if (count % n != 0) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    suppressed = count == 0 ? 0 : n - 1;
    return true;
  }

  [[nodiscard]] const char* site() const { return site_; }
  [[nodiscard]] std::uint64_t hits() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t suppressed_count() const {
    return suppressed_.load(std::memory_order_relaxed);
  }
  void reset() {
    count_.store(0, std::memory_order_relaxed);
    suppressed_.store(0, std::memory_order_relaxed);
  }

 private:
  const char* site_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> suppressed_{0};
};
}  // namespace detail

}  // namespace tnp

/// Rate-limited logging: emits one message out of every `n` hits of this
/// call site, annotating how many were suppressed in between. Keeps
/// per-message fault paths (e.g. corrupted-auth drops during chaos runs)
/// readable without losing the signal entirely. `site` names the call site
/// in log_site_stats(), where every hit — suppressed ones included — stays
/// countable so tests can assert on drops the log never printed.
#define TNP_LOG_EVERY_N(level, n, site, ...)                             \
  do {                                                                   \
    static ::tnp::detail::LogRateLimiter tnp_log_limiter_{(site)};       \
    std::uint64_t tnp_log_suppressed_ = 0;                               \
    if (tnp_log_limiter_.admit((n), tnp_log_suppressed_)) {              \
      if (tnp_log_suppressed_ > 0) {                                     \
        ::tnp::log((level), __VA_ARGS__, " [", tnp_log_suppressed_,      \
                   " similar suppressed]");                              \
      } else {                                                           \
        ::tnp::log((level), __VA_ARGS__);                                \
      }                                                                  \
    }                                                                    \
  } while (0)

#define TNP_LOG_WARN_EVERY_N(n, site, ...) \
  TNP_LOG_EVERY_N(::tnp::LogLevel::kWarn, (n), (site), __VA_ARGS__)
#define TNP_LOG_ERROR_EVERY_N(n, site, ...) \
  TNP_LOG_EVERY_N(::tnp::LogLevel::kError, (n), (site), __VA_ARGS__)
