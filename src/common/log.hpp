// Minimal leveled logger. Single global sink (stderr by default), cheap
// enough to leave in hot paths at kInfo-off. Format-string free by design:
// callers build strings with operator<< style via Logf's variadic append.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace tnp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, std::string_view message);
}

/// log(LogLevel::kInfo, "committed block ", height, " with ", n, " txs");
template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  detail::log_emit(level, oss.str());
}

template <typename... Args>
void log_debug(Args&&... args) {
  log(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  log(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  log(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace tnp
