// Error taxonomy shared across the platform.
//
// Hot validation paths (block/tx/signature checks, contract execution)
// report failures through Expected<T>/Status rather than exceptions, so a
// malformed message from a simulated peer is ordinary control flow.
#pragma once

#include <string>
#include <string_view>

namespace tnp {

/// Coarse error categories. Every subsystem maps its failures onto these so
/// callers can switch on category without string matching.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kFailedPrecondition,
  kOutOfRange,
  kUnauthenticated,   // bad signature / unknown identity
  kCorruptData,       // hash mismatch, malformed encoding
  kResourceExhausted, // gas, stake, queue capacity
  kUnavailable,       // partitioned / dropped in the simulated network
  kInternal,
};

/// Human-readable name for an ErrorCode (stable, for logs and tests).
constexpr std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kUnauthenticated: return "UNAUTHENTICATED";
    case ErrorCode::kCorruptData: return "CORRUPT_DATA";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

/// An error: category plus context message. Cheap to move, comparable by
/// code (messages are for humans, not control flow).
class Error {
 public:
  Error() = default;
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] bool ok() const { return code_ == ErrorCode::kOk; }

  [[nodiscard]] std::string to_string() const {
    std::string out{tnp::to_string(code_)};
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Error& a, const Error& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

}  // namespace tnp
