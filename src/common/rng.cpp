#include "common/rng.hpp"

#include <algorithm>
#include <unordered_set>

namespace tnp {

std::size_t Rng::zipf(std::size_t n, double s) {
  assert(n > 0);
  // Inverse transform on the harmonic CDF. O(n) worst case but n is small
  // (vocabulary buckets, topic counts) wherever this is used.
  double h = 0.0;
  for (std::size_t i = 1; i <= n; ++i) h += 1.0 / std::pow(double(i), s);
  double u = uniform01() * h;
  double acc = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (acc >= u) return i - 1;
  }
  return n - 1;
}

std::uint64_t Rng::poisson(double lambda) {
  assert(lambda >= 0);
  if (lambda <= 0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform01();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation for large lambda.
  const double v = normal(lambda, std::sqrt(lambda));
  return v < 0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double u = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  assert(k <= n);
  if (k == 0) return {};
  if (k * 3 >= n) {
    // Dense: partial Fisher–Yates over the full index range.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::swap(all[i], all[i + uniform(n - i)]);
    }
    all.resize(k);
    return all;
  }
  // Sparse: rejection sampling.
  std::unordered_set<std::size_t> seen;
  std::vector<std::size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const std::size_t idx = uniform(n);
    if (seen.insert(idx).second) out.push_back(idx);
  }
  return out;
}

}  // namespace tnp
