// Expected<T>: value-or-Error result type (C++20 predates std::expected).
//
// Used on hot validation paths where failure is ordinary control flow.
// Accessors assert in debug builds; use ok()/error() to branch.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/error.hpp"

namespace tnp {

template <typename T>
class [[nodiscard]] Expected {
 public:
  // Intentionally implicit: lets `return value;` and `return Error{...};`
  // both convert, mirroring std::expected.
  Expected(T value) : storage_(std::move(value)) {}  // NOLINT
  Expected(Error error) : storage_(std::move(error)) {  // NOLINT
    assert(!std::get<Error>(storage_).ok() && "Expected error must not be kOk");
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(storage_);
  }

  /// Value if present, otherwise `fallback`.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Status: an Expected with no payload. kOk Error means success.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT
  Status(ErrorCode code, std::string message)
      : error_(code, std::move(message)) {}

  [[nodiscard]] bool ok() const { return error_.ok(); }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const Error& error() const { return error_; }
  [[nodiscard]] std::string to_string() const {
    return ok() ? "OK" : error_.to_string();
  }

  static Status Ok() { return {}; }

 private:
  Error error_;
};

}  // namespace tnp
