#include "common/stats.hpp"

#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace tnp {

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  return sum() / static_cast<double>(values_.size());
}

double Samples::sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Samples::percentile(double p) const {
  assert(p >= 0.0 && p <= 100.0);
  if (values_.empty()) return 0.0;
  ensure_sorted();
  if (values_.size() == 1) return values_[0];
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Samples::min() const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  return values_.front();
}

double Samples::max() const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  return values_.back();
}

std::string Samples::summary() const {
  std::ostringstream oss;
  oss << "n=" << count() << " mean=" << mean() << " p50=" << percentile(50)
      << " p95=" << percentile(95) << " p99=" << percentile(99)
      << " max=" << max();
  return oss.str();
}

double ConfusionMatrix::accuracy() const {
  const auto t = total();
  return t == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(t);
}

double ConfusionMatrix::precision() const {
  return (tp + fp) == 0 ? 0.0
                        : static_cast<double>(tp) / static_cast<double>(tp + fp);
}

double ConfusionMatrix::recall() const {
  return (tp + fn) == 0 ? 0.0
                        : static_cast<double>(tp) / static_cast<double>(tp + fn);
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::false_positive_rate() const {
  return (fp + tn) == 0 ? 0.0
                        : static_cast<double>(fp) / static_cast<double>(fp + tn);
}

double roc_auc(const std::vector<std::pair<double, bool>>& scored) {
  if (scored.empty()) return 0.5;
  std::vector<std::pair<double, bool>> sorted = scored;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Midrank assignment for ties, then Mann–Whitney U.
  std::size_t positives = 0;
  double rank_sum_pos = 0.0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j].first == sorted[i].first) ++j;
    const double midrank = (static_cast<double>(i) + static_cast<double>(j - 1)) / 2.0 + 1.0;
    for (std::size_t k = i; k < j; ++k) {
      if (sorted[k].second) {
        ++positives;
        rank_sum_pos += midrank;
      }
    }
    i = j;
  }
  const std::size_t negatives = sorted.size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  const double u = rank_sum_pos -
                   static_cast<double>(positives) * (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

}  // namespace tnp
