// Byte-buffer utilities: hex codecs, little-endian integer packing, and a
// simple append-style binary writer/reader used by every wire format in the
// simulated stack (transactions, blocks, consensus messages, VM bytecode).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hpp"

namespace tnp {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Lowercase hex encoding of a byte span.
[[nodiscard]] std::string to_hex(BytesView data);

/// Decodes lowercase/uppercase hex. Fails on odd length or non-hex chars.
[[nodiscard]] Expected<Bytes> from_hex(std::string_view hex);

/// Bytes from a string's raw characters (no encoding applied).
[[nodiscard]] inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// String from raw bytes (inverse of to_bytes).
[[nodiscard]] inline std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

/// Append-only binary encoder. All integers are little-endian; strings and
/// blobs are length-prefixed with u32. Deliberately minimal: deterministic,
/// no versioning — simulation wire format, not a storage format.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    append_le(bits);
  }
  void bytes(BytesView v) {
    u32(static_cast<std::uint32_t>(v.size()));
    raw(v);
  }
  void str(std::string_view v) {
    u32(static_cast<std::uint32_t>(v.size()));
    buf_.insert(buf_.end(), v.begin(), v.end());
  }
  /// Appends without a length prefix (fixed-width fields like hashes).
  void raw(BytesView v) { buf_.insert(buf_.end(), v.begin(), v.end()); }

  [[nodiscard]] const Bytes& data() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes buf_;
};

/// Matching decoder. Every accessor returns Expected so truncated or
/// malformed inputs (e.g. from a byzantine simulated peer) fail cleanly.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  [[nodiscard]] Expected<std::uint8_t> u8() {
    if (pos_ + 1 > data_.size()) return truncated();
    return data_[pos_++];
  }
  [[nodiscard]] Expected<std::uint16_t> u16() { return read_le<std::uint16_t>(); }
  [[nodiscard]] Expected<std::uint32_t> u32() { return read_le<std::uint32_t>(); }
  [[nodiscard]] Expected<std::uint64_t> u64() { return read_le<std::uint64_t>(); }
  [[nodiscard]] Expected<std::int64_t> i64() {
    auto v = read_le<std::uint64_t>();
    if (!v) return v.error();
    return static_cast<std::int64_t>(*v);
  }
  [[nodiscard]] Expected<double> f64() {
    auto bits = read_le<std::uint64_t>();
    if (!bits) return bits.error();
    double v;
    std::memcpy(&v, &*bits, sizeof(v));
    return v;
  }
  [[nodiscard]] Expected<Bytes> bytes() {
    auto n = u32();
    if (!n) return n.error();
    if (pos_ + *n > data_.size()) return truncated();
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *n));
    pos_ += *n;
    return out;
  }
  [[nodiscard]] Expected<std::string> str() {
    auto b = bytes();
    if (!b) return b.error();
    return std::string(b->begin(), b->end());
  }
  /// Reads exactly n bytes without a length prefix.
  [[nodiscard]] Expected<Bytes> raw(std::size_t n) {
    if (pos_ + n > data_.size()) return truncated();
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

 private:
  template <typename T>
  Expected<T> read_le() {
    if (pos_ + sizeof(T) > data_.size()) return truncated();
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }
  static Error truncated() {
    return Error(ErrorCode::kCorruptData, "truncated buffer");
  }

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace tnp
