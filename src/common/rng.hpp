// Deterministic random number generation.
//
// Every stochastic component in the platform (network latency, workload
// generation, validator behaviour, classifier init) draws from an Rng seeded
// explicitly by its owner, so whole-system runs are bit-reproducible. The
// engine is xoshiro256** seeded via splitmix64 — fast, high quality, and
// trivially portable (unlike std::mt19937's unspecified distributions, our
// helpers are fully specified here).
#pragma once

#include <cstdint>
#include <cmath>
#include <cassert>
#include <numbers>
#include <span>
#include <vector>

namespace tnp {

/// splitmix64 step — used for seeding and for cheap hash mixing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with distribution helpers. Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EED5EED5EEDULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent stream (e.g. one per simulated node) such that
  /// streams don't correlate even for adjacent tags.
  [[nodiscard]] Rng fork(std::uint64_t tag) {
    std::uint64_t mix = next() ^ (tag * 0x9E3779B97F4A7C15ULL);
    return Rng(splitmix64(mix));
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0. Uses rejection to avoid
  /// modulo bias.
  std::uint64_t uniform(std::uint64_t bound) {
    assert(bound > 0);
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with probability p of true.
  bool chance(double p) { return uniform01() < p; }

  /// Standard normal via Box–Muller (one value per call; simple > fast).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = uniform01();
    while (u1 <= 1e-300) u1 = uniform01();
    const double u2 = uniform01();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * std::numbers::pi * u2);
    return mean + stddev * z;
  }

  /// Exponential with given rate (lambda).
  double exponential(double rate) {
    assert(rate > 0);
    double u = uniform01();
    while (u <= 1e-300) u = uniform01();
    return -std::log(u) / rate;
  }

  /// Zipf-distributed rank in [0, n) with exponent s, via inverse CDF over a
  /// precomputable table-free rejection method (n small enough in practice).
  std::size_t zipf(std::size_t n, double s);

  /// Geometric: number of failures before first success, p in (0,1].
  std::uint64_t geometric(double p) {
    assert(p > 0.0 && p <= 1.0);
    if (p >= 1.0) return 0;
    double u = uniform01();
    while (u <= 1e-300) u = uniform01();
    return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
  }

  /// Poisson (Knuth's method; fine for small lambda).
  std::uint64_t poisson(double lambda);

  /// Picks an index proportionally to non-negative weights. Sum must be > 0.
  std::size_t weighted_index(std::span<const double> weights);

  /// Uniformly chosen element reference.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    assert(!v.empty());
    return v[uniform(v.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform(i)]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), order unspecified.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace tnp
