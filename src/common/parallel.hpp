// Deterministic chunked data-parallelism for the hot paths (block signature
// verification, Merkle level hashing, batch text similarity).
//
// Design goals, in order:
//  * bit-identical results to the serial path — work is split into
//    contiguous index ranges decided up front (no work stealing, no
//    dynamic scheduling), and every callback writes only its own indices;
//  * graceful degradation — a pool of width 1 (or a tiny `n`) runs inline
//    on the calling thread with zero synchronisation;
//  * safe nesting — a parallel_for issued from inside a pool worker runs
//    inline, so library code may parallelise without deadlock worry.
//
// Pool width defaults to std::thread::hardware_concurrency() and can be
// overridden with the TNP_THREADS environment variable (benches and tests
// use set_global_thread_count()).
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

namespace tnp {

/// Parallel width the global pool is built with: TNP_THREADS if set (>=1),
/// otherwise hardware concurrency (>=1). Re-reads the environment on every
/// call; only pool construction caches it.
[[nodiscard]] std::size_t default_thread_count();

/// Fixed-width pool of persistent workers. Width counts the calling thread:
/// a pool of width T spawns T-1 workers and the caller executes the first
/// chunk itself, so width 1 means "no threads at all".
class ThreadPool {
 public:
  /// `width` 0 means default_thread_count().
  explicit ThreadPool(std::size_t width = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t width() const { return width_; }

  /// Core primitive: partitions [0, n) into at most width() contiguous
  /// chunks of at least `min_per_chunk` indices and runs
  /// `body(begin, end)` for each, blocking until all complete. Falls back
  /// to a single inline call when the split would be pointless (width 1,
  /// small n) or when called from inside a pool worker (reentrancy).
  /// If chunks throw, the exception from the lowest chunk index is
  /// rethrown after all chunks finish.
  void for_chunks(std::size_t n, std::size_t min_per_chunk,
                  const std::function<void(std::size_t, std::size_t)>& body);

 private:
  struct Impl;
  std::size_t width_;
  Impl* impl_;  // owned; hides <thread>/<mutex> from this header
};

/// Process-wide pool used by the ledger/crypto/text hot paths.
[[nodiscard]] ThreadPool& global_pool();

/// Rebuilds the global pool with `width` threads (0 = default). Not
/// thread-safe — call only while no parallel work is in flight (benches
/// and tests sweeping thread counts).
void set_global_thread_count(std::size_t width);

/// Runs fn(i) for every i in [0, n) across the pool. Chunks are contiguous
/// and at least `min_per_thread` wide, so outputs written at index i are
/// bit-identical to the serial loop.
template <typename F>
void parallel_for(std::size_t n, F&& fn, std::size_t min_per_thread = 1,
                  ThreadPool* pool = nullptr) {
  ThreadPool& p = pool ? *pool : global_pool();
  p.for_chunks(n, min_per_thread,
               [&fn](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) fn(i);
               });
}

/// Wave scheduling: runs fn(indices[k]) for every element of a sparse
/// index list, chunked contiguously across the pool. The optimistic
/// execution engine uses this to re-run exactly the set of invalidated
/// transaction indices each round; successive waves are separated by the
/// pool's join barrier, so wave N's writes happen-before wave N+1's reads.
template <typename F>
void parallel_for_indices(const std::vector<std::size_t>& indices, F&& fn,
                          std::size_t min_per_thread = 1,
                          ThreadPool* pool = nullptr) {
  ThreadPool& p = pool ? *pool : global_pool();
  p.for_chunks(indices.size(), min_per_thread,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t k = begin; k < end; ++k) fn(indices[k]);
               });
}

/// out[i] = fn(items[i]) for every i, in parallel, order preserved. The
/// result type must be default-constructible.
template <typename T, typename F>
auto parallel_map(const std::vector<T>& items, F&& fn,
                  std::size_t min_per_thread = 1, ThreadPool* pool = nullptr)
    -> std::vector<std::decay_t<std::invoke_result_t<F&, const T&>>> {
  using R = std::decay_t<std::invoke_result_t<F&, const T&>>;
  std::vector<R> out(items.size());
  parallel_for(
      items.size(), [&](std::size_t i) { out[i] = fn(items[i]); },
      min_per_thread, pool);
  return out;
}

}  // namespace tnp
