// Streaming and batch statistics used by benches and the reputation system:
// Welford running moments, reservoir-free percentile summaries, and fixed-
// bucket histograms.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tnp {

/// Welford online mean/variance. O(1) memory, numerically stable.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores all samples; exact percentiles on demand. Fine at bench scale.
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// p in [0,100]; linear interpolation between order statistics.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  /// "n=100 mean=1.2 p50=1.1 p95=2.0 max=3.3" — bench row helper.
  [[nodiscard]] std::string summary() const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Binary-classification counters and the derived metrics every detector
/// bench reports.
struct ConfusionMatrix {
  std::uint64_t tp = 0, fp = 0, tn = 0, fn = 0;

  void add(bool predicted_positive, bool actually_positive) {
    if (predicted_positive && actually_positive) ++tp;
    else if (predicted_positive && !actually_positive) ++fp;
    else if (!predicted_positive && actually_positive) ++fn;
    else ++tn;
  }

  [[nodiscard]] double accuracy() const;
  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
  [[nodiscard]] double f1() const;
  [[nodiscard]] double false_positive_rate() const;
  [[nodiscard]] std::uint64_t total() const { return tp + fp + tn + fn; }
};

/// Area under the ROC curve from (score, label) pairs, by rank statistic
/// (equivalent to the Mann–Whitney U normalisation). Ties handled by
/// midranks.
[[nodiscard]] double roc_auc(const std::vector<std::pair<double, bool>>& scored);

}  // namespace tnp
