#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <vector>

namespace tnp {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

// Registry of rate-limiter call sites. Limiters are function-local statics,
// so they live for the process — raw pointers are safe. Guarded by its own
// mutex: registration happens once per site, reads only from stats calls.
std::mutex g_sites_mutex;
std::vector<const detail::LogRateLimiter*>& sites() {
  static std::vector<const detail::LogRateLimiter*> v;
  return v;
}

constexpr std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

std::map<std::string, LogSiteStats> log_site_stats() {
  std::map<std::string, LogSiteStats> out;
  const std::scoped_lock lock(g_sites_mutex);
  // Several call sites may share a name (e.g. the same logical failure in
  // two handlers): their counts merge.
  for (const auto* limiter : sites()) {
    auto& s = out[limiter->site()];
    s.hits += limiter->hits();
    s.suppressed += limiter->suppressed_count();
  }
  return out;
}

LogSiteStats log_site_stats(std::string_view site) {
  LogSiteStats out;
  const std::scoped_lock lock(g_sites_mutex);
  for (const auto* limiter : sites()) {
    if (limiter->site() == site) {
      out.hits += limiter->hits();
      out.suppressed += limiter->suppressed_count();
    }
  }
  return out;
}

void reset_log_site_stats() {
  const std::scoped_lock lock(g_sites_mutex);
  for (const auto* limiter : sites()) {
    const_cast<detail::LogRateLimiter*>(limiter)->reset();
  }
}

namespace detail {
LogRateLimiter::LogRateLimiter(const char* site) : site_(site) {
  const std::scoped_lock lock(g_sites_mutex);
  sites().push_back(this);
}
}  // namespace detail

namespace detail {
void log_emit(LogLevel level, std::string_view message) {
  const std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(level_tag(level).size()),
               level_tag(level).data(), static_cast<int>(message.size()),
               message.data());
}
}  // namespace detail

}  // namespace tnp
