#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace tnp {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

constexpr std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, std::string_view message) {
  const std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(level_tag(level).size()),
               level_tag(level).data(), static_cast<int>(message.size()),
               message.data());
}
}  // namespace detail

}  // namespace tnp
