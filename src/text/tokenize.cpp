#include "text/tokenize.hpp"

#include <cctype>

namespace tnp::text {

Tokens tokenize(std::string_view text) {
  Tokens out;
  std::string current;
  for (char c : text) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      current.push_back(static_cast<char>(std::tolower(uc)));
    } else if (!current.empty()) {
      out.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

std::string join(const Tokens& tokens) {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i) out.push_back(' ');
    out += tokens[i];
  }
  return out;
}

std::uint32_t Vocabulary::add(std::string_view word) {
  const auto it = index_.find(std::string(word));
  if (it != index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(words_.size());
  words_.emplace_back(word);
  index_.emplace(words_.back(), id);
  return id;
}

std::int64_t Vocabulary::lookup(std::string_view word) const {
  const auto it = index_.find(std::string(word));
  return it == index_.end() ? -1 : static_cast<std::int64_t>(it->second);
}

std::vector<std::uint32_t> Vocabulary::encode(const Tokens& tokens) {
  std::vector<std::uint32_t> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) ids.push_back(add(t));
  return ids;
}

std::unordered_map<std::string, std::uint32_t> term_counts(
    const Tokens& tokens) {
  std::unordered_map<std::string, std::uint32_t> counts;
  for (const auto& t : tokens) ++counts[t];
  return counts;
}

}  // namespace tnp::text
