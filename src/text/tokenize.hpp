// Tokenization and vocabulary for the news-content pipeline. ASCII-only,
// lowercasing, alnum word runs — the corpus generator emits exactly this
// shape, and keeping it trivial makes every downstream number reproducible.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tnp::text {

using Tokens = std::vector<std::string>;

/// Splits into lowercase alphanumeric word tokens.
[[nodiscard]] Tokens tokenize(std::string_view text);

/// Joins tokens with single spaces (inverse-ish of tokenize).
[[nodiscard]] std::string join(const Tokens& tokens);

/// Bidirectional word <-> dense id map. Ids are assigned in first-seen
/// order; `add` returns the id.
class Vocabulary {
 public:
  std::uint32_t add(std::string_view word);
  [[nodiscard]] std::int64_t lookup(std::string_view word) const;  // -1 absent
  [[nodiscard]] const std::string& word(std::uint32_t id) const {
    return words_.at(id);
  }
  [[nodiscard]] std::size_t size() const { return words_.size(); }

  /// Adds every token; returns the id sequence.
  std::vector<std::uint32_t> encode(const Tokens& tokens);

 private:
  std::unordered_map<std::string, std::uint32_t, std::hash<std::string>,
                     std::equal_to<>> index_;
  std::vector<std::string> words_;
};

/// Term frequency over a token list.
[[nodiscard]] std::unordered_map<std::string, std::uint32_t> term_counts(
    const Tokens& tokens);

}  // namespace tnp::text
