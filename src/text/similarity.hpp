// Document similarity: shingling, exact Jaccard, MinHash sketches, token
// LCS, and the combined DiffStats the news supply-chain layer uses to
// quantify "degree of modification" along a propagation edge (paper Sec VI).
#pragma once

#include <cstdint>
#include <deque>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "text/tokenize.hpp"

namespace tnp::text {

using ShingleSet = std::unordered_set<std::uint64_t>;

/// Hashed k-token shingles (k-grams). k must be >= 1; documents shorter
/// than k yield a single whole-document shingle.
[[nodiscard]] ShingleSet shingles(const Tokens& tokens, std::size_t k = 3);

/// Exact Jaccard similarity of two shingle sets (1.0 when both empty).
[[nodiscard]] double jaccard(const ShingleSet& a, const ShingleSet& b);

/// Containment |A∩B| / |A| — how much of `a` survives inside `b`.
[[nodiscard]] double containment(const ShingleSet& a, const ShingleSet& b);

/// MinHash sketch: `num_hashes` permutations via parameterized splitmix.
class MinHash {
 public:
  explicit MinHash(std::size_t num_hashes = 64, std::uint64_t seed = 0x9E37);

  using Signature = std::vector<std::uint64_t>;
  [[nodiscard]] Signature signature(const ShingleSet& set) const;

  /// Estimated Jaccard = fraction of agreeing components.
  [[nodiscard]] static double estimate(const Signature& a, const Signature& b);

  [[nodiscard]] std::size_t num_hashes() const { return salts_.size(); }

 private:
  std::vector<std::uint64_t> salts_;
};

/// Length of the longest common subsequence of two token lists.
/// O(|a|*|b|) DP with O(min) memory.
[[nodiscard]] std::size_t lcs_length(const Tokens& a, const Tokens& b);

/// 2*LCS/(|a|+|b|) — order-sensitive similarity in [0,1].
[[nodiscard]] double lcs_similarity(const Tokens& a, const Tokens& b);

/// The similarity bundle used to classify an edit and compute modification
/// degree.
struct DiffStats {
  double jaccard = 0.0;          // shingle overlap (order-insensitive)
  double lcs = 0.0;              // LCS ratio (order-sensitive)
  double parent_in_child = 0.0;  // containment of parent in child
  double child_in_parent = 0.0;  // containment of child in parent

  /// Combined similarity: the news-ranking layer's per-edge weight.
  [[nodiscard]] double similarity() const { return 0.5 * jaccard + 0.5 * lcs; }
  /// 1 - similarity: the paper's "degree of modification".
  [[nodiscard]] double modification_degree() const {
    return 1.0 - similarity();
  }
};

[[nodiscard]] DiffStats diff_stats(const Tokens& parent, const Tokens& child,
                                   std::size_t shingle_k = 3);

/// diff_stats on already-tokenized/shingled documents — the shared core
/// both the one-shot path and BatchSimilarity go through.
[[nodiscard]] DiffStats diff_stats_precomputed(const Tokens& parent,
                                               const ShingleSet& ps,
                                               const Tokens& child,
                                               const ShingleSet& cs);

/// Batched DiffStats over many (parent, child) document pairs.
///
/// Each unique document is tokenized and shingled exactly once — the cache
/// is keyed by a caller-supplied 64-bit content key (fold of the content
/// hash; the caller guarantees distinct contents get distinct keys) and
/// persists across run() calls. Both the per-document preprocessing and
/// the per-pair stats execute on the global thread pool, and results are
/// bit-identical to calling diff_stats() on each pair serially.
///
/// Not thread-safe: one BatchSimilarity per analysis pass (or one
/// long-lived instance owned by a single analysis engine).
///
/// The memo cache is bounded: documents are evicted FIFO (insertion order,
/// like the chain's verified-signature cache) once the cache exceeds
/// `cache_capacity`. Eviction is deferred to the end of run() so in-pass
/// pointers stay valid — the bound is soft by at most one batch. Evicting
/// never changes results, only re-preprocessing cost.
class BatchSimilarity {
 public:
  explicit BatchSimilarity(std::size_t shingle_k = 3,
                           std::size_t cache_capacity = 1 << 15);

  struct Request {
    std::uint64_t parent_key = 0;
    std::string_view parent_text;
    std::uint64_t child_key = 0;
    std::string_view child_text;
  };

  /// out[i] = diff_stats(tokenize(requests[i].parent_text),
  ///                     tokenize(requests[i].child_text), shingle_k).
  [[nodiscard]] std::vector<DiffStats> run(
      const std::vector<Request>& requests);

  struct Doc {
    Tokens tokens;
    ShingleSet shingles;
  };
  /// Cached preprocessing for `key`, or nullptr if never seen.
  [[nodiscard]] const Doc* cached(std::uint64_t key) const;
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  [[nodiscard]] std::size_t cache_capacity() const { return cache_capacity_; }

  /// Memo-cache traffic counters, cumulative across run() calls. A hit is
  /// a request document already preprocessed; a miss is one preprocessed
  /// this run; evictions count documents dropped by the FIFO bound.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  std::size_t shingle_k_;
  std::size_t cache_capacity_;
  std::unordered_map<std::uint64_t, Doc> cache_;
  std::deque<std::uint64_t> cache_order_;  // insertion order, for FIFO eviction
  Stats stats_;
};

}  // namespace tnp::text
