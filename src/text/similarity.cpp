#include "text/similarity.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace tnp::text {

namespace {
std::uint64_t hash_token(std::string_view token, std::uint64_t salt) {
  // FNV-1a folded through splitmix for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ salt;
  for (char c : token) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t s = h;
  return splitmix64(s);
}
}  // namespace

ShingleSet shingles(const Tokens& tokens, std::size_t k) {
  ShingleSet out;
  if (tokens.empty()) return out;
  if (tokens.size() < k) k = tokens.size();
  for (std::size_t i = 0; i + k <= tokens.size(); ++i) {
    std::uint64_t h = 0x517cc1b727220a95ULL;
    for (std::size_t j = 0; j < k; ++j) {
      h = h * 0x2545F4914F6CDD1DULL + hash_token(tokens[i + j], j);
    }
    std::uint64_t s = h;
    out.insert(splitmix64(s));
  }
  return out;
}

double jaccard(const ShingleSet& a, const ShingleSet& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const ShingleSet& small = a.size() <= b.size() ? a : b;
  const ShingleSet& large = a.size() <= b.size() ? b : a;
  std::size_t inter = 0;
  for (std::uint64_t x : small) inter += large.contains(x);
  return static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size() - inter);
}

double containment(const ShingleSet& a, const ShingleSet& b) {
  if (a.empty()) return 1.0;
  std::size_t inter = 0;
  for (std::uint64_t x : a) inter += b.contains(x);
  return static_cast<double>(inter) / static_cast<double>(a.size());
}

MinHash::MinHash(std::size_t num_hashes, std::uint64_t seed) {
  salts_.reserve(num_hashes);
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < num_hashes; ++i) salts_.push_back(splitmix64(s));
}

MinHash::Signature MinHash::signature(const ShingleSet& set) const {
  Signature sig(salts_.size(), UINT64_MAX);
  for (std::uint64_t shingle : set) {
    for (std::size_t i = 0; i < salts_.size(); ++i) {
      std::uint64_t mixed = shingle ^ salts_[i];
      const std::uint64_t h = splitmix64(mixed);
      if (h < sig[i]) sig[i] = h;
    }
  }
  return sig;
}

double MinHash::estimate(const Signature& a, const Signature& b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  std::size_t agree = 0;
  for (std::size_t i = 0; i < a.size(); ++i) agree += a[i] == b[i];
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

std::size_t lcs_length(const Tokens& a, const Tokens& b) {
  if (a.empty() || b.empty()) return 0;
  const Tokens& rows = a.size() >= b.size() ? a : b;
  const Tokens& cols = a.size() >= b.size() ? b : a;
  std::vector<std::size_t> prev(cols.size() + 1, 0);
  std::vector<std::size_t> cur(cols.size() + 1, 0);
  for (std::size_t i = 1; i <= rows.size(); ++i) {
    for (std::size_t j = 1; j <= cols.size(); ++j) {
      cur[j] = rows[i - 1] == cols[j - 1]
                   ? prev[j - 1] + 1
                   : std::max(prev[j], cur[j - 1]);
    }
    std::swap(prev, cur);
  }
  return prev[cols.size()];
}

double lcs_similarity(const Tokens& a, const Tokens& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  return 2.0 * static_cast<double>(lcs_length(a, b)) /
         static_cast<double>(a.size() + b.size());
}

DiffStats diff_stats(const Tokens& parent, const Tokens& child,
                     std::size_t shingle_k) {
  const ShingleSet ps = shingles(parent, shingle_k);
  const ShingleSet cs = shingles(child, shingle_k);
  DiffStats stats;
  stats.jaccard = jaccard(ps, cs);
  stats.lcs = lcs_similarity(parent, child);
  stats.parent_in_child = containment(ps, cs);
  stats.child_in_parent = containment(cs, ps);
  return stats;
}

}  // namespace tnp::text
