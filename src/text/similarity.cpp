#include "text/similarity.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace tnp::text {

namespace {
std::uint64_t hash_token(std::string_view token, std::uint64_t salt) {
  // FNV-1a folded through splitmix for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ salt;
  for (char c : token) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t s = h;
  return splitmix64(s);
}
}  // namespace

ShingleSet shingles(const Tokens& tokens, std::size_t k) {
  ShingleSet out;
  if (tokens.empty()) return out;
  if (tokens.size() < k) k = tokens.size();
  // Hash every token exactly once; each window then combines the cached
  // hashes with a position-weighted polynomial (the multiplier powers keep
  // within-window order significant), so the string bytes are scanned once
  // instead of k times per sliding window.
  std::vector<std::uint64_t> token_hashes(tokens.size());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    token_hashes[i] = hash_token(tokens[i], 0);
  }
  out.reserve(tokens.size() - k + 1);
  for (std::size_t i = 0; i + k <= tokens.size(); ++i) {
    std::uint64_t h = 0x517cc1b727220a95ULL;
    for (std::size_t j = 0; j < k; ++j) {
      h = h * 0x2545F4914F6CDD1DULL + token_hashes[i + j];
    }
    std::uint64_t s = h;
    out.insert(splitmix64(s));
  }
  return out;
}

double jaccard(const ShingleSet& a, const ShingleSet& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const ShingleSet& small = a.size() <= b.size() ? a : b;
  const ShingleSet& large = a.size() <= b.size() ? b : a;
  std::size_t inter = 0;
  for (std::uint64_t x : small) inter += large.contains(x);
  return static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size() - inter);
}

double containment(const ShingleSet& a, const ShingleSet& b) {
  if (a.empty()) return 1.0;
  std::size_t inter = 0;
  for (std::uint64_t x : a) inter += b.contains(x);
  return static_cast<double>(inter) / static_cast<double>(a.size());
}

MinHash::MinHash(std::size_t num_hashes, std::uint64_t seed) {
  salts_.reserve(num_hashes);
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < num_hashes; ++i) salts_.push_back(splitmix64(s));
}

MinHash::Signature MinHash::signature(const ShingleSet& set) const {
  Signature sig(salts_.size(), UINT64_MAX);
  for (std::uint64_t shingle : set) {
    for (std::size_t i = 0; i < salts_.size(); ++i) {
      std::uint64_t mixed = shingle ^ salts_[i];
      const std::uint64_t h = splitmix64(mixed);
      if (h < sig[i]) sig[i] = h;
    }
  }
  return sig;
}

double MinHash::estimate(const Signature& a, const Signature& b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  std::size_t agree = 0;
  for (std::size_t i = 0; i < a.size(); ++i) agree += a[i] == b[i];
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

std::size_t lcs_length(const Tokens& a, const Tokens& b) {
  if (a.empty() || b.empty()) return 0;
  const Tokens& rows = a.size() >= b.size() ? a : b;
  const Tokens& cols = a.size() >= b.size() ? b : a;
  std::vector<std::size_t> prev(cols.size() + 1, 0);
  std::vector<std::size_t> cur(cols.size() + 1, 0);
  for (std::size_t i = 1; i <= rows.size(); ++i) {
    for (std::size_t j = 1; j <= cols.size(); ++j) {
      cur[j] = rows[i - 1] == cols[j - 1]
                   ? prev[j - 1] + 1
                   : std::max(prev[j], cur[j - 1]);
    }
    std::swap(prev, cur);
  }
  return prev[cols.size()];
}

double lcs_similarity(const Tokens& a, const Tokens& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  return 2.0 * static_cast<double>(lcs_length(a, b)) /
         static_cast<double>(a.size() + b.size());
}

DiffStats diff_stats_precomputed(const Tokens& parent, const ShingleSet& ps,
                                 const Tokens& child, const ShingleSet& cs) {
  DiffStats stats;
  stats.jaccard = jaccard(ps, cs);
  stats.lcs = lcs_similarity(parent, child);
  stats.parent_in_child = containment(ps, cs);
  stats.child_in_parent = containment(cs, ps);
  return stats;
}

DiffStats diff_stats(const Tokens& parent, const Tokens& child,
                     std::size_t shingle_k) {
  return diff_stats_precomputed(parent, shingles(parent, shingle_k), child,
                                shingles(child, shingle_k));
}

BatchSimilarity::BatchSimilarity(std::size_t shingle_k,
                                 std::size_t cache_capacity)
    : shingle_k_(shingle_k), cache_capacity_(cache_capacity) {}

const BatchSimilarity::Doc* BatchSimilarity::cached(std::uint64_t key) const {
  const auto it = cache_.find(key);
  return it == cache_.end() ? nullptr : &it->second;
}

std::vector<DiffStats> BatchSimilarity::run(
    const std::vector<Request>& requests) {
  // Phase 1 (parallel): tokenize + shingle every document not yet cached,
  // once per unique key. The cache is only written on the serial side of
  // the barrier, so phase 2 reads it lock-free.
  std::vector<std::pair<std::uint64_t, std::string_view>> missing;
  {
    std::unordered_set<std::uint64_t> queued;
    auto need = [&](std::uint64_t key, std::string_view text) {
      if (cache_.contains(key)) {
        ++stats_.hits;
      } else if (queued.insert(key).second) {
        ++stats_.misses;
        missing.emplace_back(key, text);
      }
    };
    for (const auto& req : requests) {
      need(req.parent_key, req.parent_text);
      need(req.child_key, req.child_text);
    }
  }
  auto docs = parallel_map(
      missing,
      [&](const std::pair<std::uint64_t, std::string_view>& item) {
        Doc doc;
        doc.tokens = tokenize(item.second);
        doc.shingles = shingles(doc.tokens, shingle_k_);
        return doc;
      });
  for (std::size_t i = 0; i < missing.size(); ++i) {
    if (cache_.emplace(missing[i].first, std::move(docs[i])).second) {
      cache_order_.push_back(missing[i].first);
    }
  }

  // Phase 2 (parallel): pairwise stats over the read-only cache. Same
  // jaccard/containment/LCS calls as the serial diff_stats, on the same
  // token/shingle inputs, so results are bit-identical.
  auto out = parallel_map(requests, [&](const Request& req) {
    const Doc& parent = cache_.at(req.parent_key);
    const Doc& child = cache_.at(req.child_key);
    return diff_stats_precomputed(parent.tokens, parent.shingles, child.tokens,
                                  child.shingles);
  });

  // FIFO eviction after the batch: the pass above holds references into
  // the cache, so the bound is enforced only between runs (soft by at most
  // one batch, like the verified-signature cache's insert-then-trim).
  while (cache_.size() > cache_capacity_ && !cache_order_.empty()) {
    cache_.erase(cache_order_.front());
    cache_order_.pop_front();
    ++stats_.evictions;
  }
  return out;
}

}  // namespace tnp::text
