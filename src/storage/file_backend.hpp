// Pluggable file layer under the storage engine.
//
// The engine only ever needs a handful of primitives — append, whole-file
// replace, fsync, atomic rename, truncate — so the backend interface stays
// small enough for tests to interpose exactly. Durability contract (the one
// the recovery proofs lean on):
//   * appended / written data is VOLATILE until fsync(name) returns;
//   * rename/remove/creation are metadata operations and take effect
//     durably at once (journaled-metadata model, as ext4 ordered mode);
//   * a power cut may retain any fsynced prefix plus, at the torn edge,
//     a partial unflushed write — recovery must treat anything past the
//     last fsync as untrusted bytes.
//
// MemoryBackend implements that contract exactly and adds the fault dials
// the crash harness drives: a mutating-op budget with an optional torn
// tail at the cut, plus byte-level corruption hooks. DiskBackend maps the
// same interface onto a real directory (POSIX), for benches and examples.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/expected.hpp"

namespace tnp::storage {

/// Mutating-operation counters; the crash sweep uses `mutations` as its
/// kill-point coordinate and the bench reports `fsyncs` per commit policy.
struct BackendStats {
  std::uint64_t appends = 0;
  std::uint64_t writes = 0;  // whole-file replaces
  std::uint64_t fsyncs = 0;
  std::uint64_t renames = 0;
  std::uint64_t removes = 0;
  std::uint64_t truncates = 0;
  std::uint64_t bytes_written = 0;

  [[nodiscard]] std::uint64_t mutations() const {
    return appends + writes + fsyncs + renames + removes + truncates;
  }
};

class FileBackend {
 public:
  virtual ~FileBackend() = default;

  /// Appends to `name`, creating it if absent. Volatile until fsync.
  virtual Status append(const std::string& name, BytesView data) = 0;
  /// Creates or replaces `name` with `data`. Volatile until fsync.
  virtual Status write_file(const std::string& name, BytesView data) = 0;
  /// Makes all previously written data of `name` durable.
  virtual Status fsync(const std::string& name) = 0;
  /// Atomic, immediately durable rename (replaces any existing target).
  virtual Status rename(const std::string& from, const std::string& to) = 0;
  virtual Status remove(const std::string& name) = 0;
  virtual Status truncate(const std::string& name, std::uint64_t size) = 0;

  [[nodiscard]] virtual Expected<Bytes> read_file(
      const std::string& name) const = 0;
  [[nodiscard]] virtual Expected<std::uint64_t> size(
      const std::string& name) const = 0;
  [[nodiscard]] virtual bool exists(const std::string& name) const = 0;
  /// All file names, lexicographically sorted.
  [[nodiscard]] virtual std::vector<std::string> list() const = 0;

  [[nodiscard]] virtual const BackendStats& stats() const = 0;

  /// Simulates losing power and restarting the machine: all un-fsynced
  /// data disappears. No-op for backends that cannot model it (real disk).
  virtual void simulate_crash() {}
};

/// In-memory backend with the full durability model plus fault injection.
/// Not thread-safe (the storage engine is driven from one thread, as the
/// simulated replicas are).
class MemoryBackend final : public FileBackend {
 public:
  Status append(const std::string& name, BytesView data) override;
  Status write_file(const std::string& name, BytesView data) override;
  Status fsync(const std::string& name) override;
  Status rename(const std::string& from, const std::string& to) override;
  Status remove(const std::string& name) override;
  Status truncate(const std::string& name, std::uint64_t size) override;

  [[nodiscard]] Expected<Bytes> read_file(
      const std::string& name) const override;
  [[nodiscard]] Expected<std::uint64_t> size(
      const std::string& name) const override;
  [[nodiscard]] bool exists(const std::string& name) const override;
  [[nodiscard]] std::vector<std::string> list() const override;
  [[nodiscard]] const BackendStats& stats() const override;

  /// Arms a power cut: after `ops_from_now` further mutating operations
  /// succeed, the next one kills the device. If the fatal operation is an
  /// append or write, its first `torn_bytes` land durably (a physically
  /// torn write); everything else un-fsynced is lost at the crash. All
  /// operations after the cut fail with kUnavailable until power_cycle().
  void set_power_cut(std::uint64_t ops_from_now, std::uint64_t torn_bytes = 0);
  [[nodiscard]] bool dead() const { return dead_; }

  /// Power-cycles the machine: drops every un-fsynced byte (keeping any
  /// torn fragment the cut committed) and brings the device back up.
  void power_cycle();
  void simulate_crash() override { power_cycle(); }

  /// Test hook: XORs `mask` into the byte at `offset` of `name`, modelling
  /// media corruption underneath any fsync guarantee.
  Status corrupt(const std::string& name, std::uint64_t offset,
                 std::uint8_t mask);

 private:
  struct File {
    Bytes data;
    std::size_t durable = 0;  // prefix length guaranteed to survive a crash
  };

  /// Budget gate shared by every mutating op. Returns false when the op
  /// must fail (device already dead, or this op is the fatal one).
  bool admit_mutation();

  std::map<std::string, File> files_;
  BackendStats stats_;
  bool dead_ = false;
  bool cut_armed_ = false;
  std::uint64_t cut_budget_ = 0;
  std::uint64_t torn_bytes_ = 0;
  const std::string* fatal_target_ = nullptr;  // set transiently by appends
};

/// POSIX directory-backed implementation. fsync maps to ::fsync, rename to
/// ::rename (atomic within a filesystem). simulate_crash() is a no-op.
class DiskBackend final : public FileBackend {
 public:
  /// Creates `root` if missing. Any failure surfaces on the first op.
  explicit DiskBackend(std::string root);
  ~DiskBackend() override;

  Status append(const std::string& name, BytesView data) override;
  Status write_file(const std::string& name, BytesView data) override;
  Status fsync(const std::string& name) override;
  Status rename(const std::string& from, const std::string& to) override;
  Status remove(const std::string& name) override;
  Status truncate(const std::string& name, std::uint64_t size) override;

  [[nodiscard]] Expected<Bytes> read_file(
      const std::string& name) const override;
  [[nodiscard]] Expected<std::uint64_t> size(
      const std::string& name) const override;
  [[nodiscard]] bool exists(const std::string& name) const override;
  [[nodiscard]] std::vector<std::string> list() const override;
  [[nodiscard]] const BackendStats& stats() const override;

 private:
  [[nodiscard]] std::string path(const std::string& name) const;
  /// Cached O_WRONLY descriptor for append/fsync (opened on demand).
  int fd_for(const std::string& name);
  void close_fd(const std::string& name);

  std::string root_;
  std::map<std::string, int> fds_;
  BackendStats stats_;
};

}  // namespace tnp::storage
