#include "storage/ledger_store.hpp"

#include <algorithm>
#include <set>

#include "obs/trace.hpp"

namespace tnp::storage {

namespace {
/// Scratch name for the tmp → fsync → rename snapshot/manifest protocol.
/// A leftover from a crash mid-write is ignored by recovery and
/// overwritten by the next snapshot.
constexpr const char* kTmpName = "tmp";
}  // namespace

Expected<std::unique_ptr<LedgerStore>> LedgerStore::open(
    std::shared_ptr<FileBackend> backend, StoreOptions options) {
  if (options.keep_manifests == 0) options.keep_manifests = 1;
  auto store = std::unique_ptr<LedgerStore>(
      new LedgerStore(std::move(backend), options));
  if (auto s = store->recover(); !s.ok()) return s.error();
  return store;
}

Status LedgerStore::recover() {
  // Step 1: newest verifiable manifest, falling back a generation per
  // failure (corrupt manifest, unreadable or corrupt snapshot).
  std::vector<std::pair<std::uint64_t, std::string>> manifests;
  for (const std::string& name : backend_->list()) {
    std::uint64_t seq = 0;
    if (parse_manifest_name(name, &seq)) manifests.emplace_back(seq, name);
  }
  std::sort(manifests.rbegin(), manifests.rend());
  manifest_seq_ = manifests.empty() ? 0 : manifests.front().first + 1;

  WalPosition replay_from{};
  std::optional<std::uint64_t> manifest_block_count;
  for (const auto& [seq, name] : manifests) {
    auto data = backend_->read_file(name);
    if (!data.ok()) {
      ++info_.manifests_rejected;
      continue;
    }
    auto manifest = Manifest::decode(BytesView(*data));
    if (!manifest.ok()) {
      ++info_.manifests_rejected;
      continue;
    }
    if (!manifest->snapshot_file.empty()) {
      auto snap = backend_->read_file(manifest->snapshot_file);
      if (!snap.ok()) {
        ++info_.manifests_rejected;
        continue;
      }
      auto cp = decode_snapshot(BytesView(*snap));
      if (!cp.ok() || cp->height != manifest->snapshot_height) {
        ++info_.manifests_rejected;
        continue;
      }
      checkpoint_ = std::move(*cp);
    }
    replay_from = manifest->wal_start;
    manifest_block_count = manifest->block_count;
    break;
  }
  info_.snapshot_height = checkpoint_ ? checkpoint_->height : 0;
  last_snapshot_height_ = info_.snapshot_height;

  // Step 2: block store scan. The CRC layer already cut any torn tail;
  // here we additionally stop at the first frame that is not the next
  // block of the chain.
  auto bs = BlockStore::open(*backend_);
  if (!bs.ok()) return bs.error();
  store_.emplace(std::move(*bs));
  info_.store_torn_bytes = store_->torn_bytes_dropped();
  for (std::uint64_t i = 0; i < store_->count(); ++i) {
    auto view = store_->at(i);
    if (!view.ok()) return view.error();
    auto block = ledger::Block::decode(*view);
    if (!block.ok() || block->header.height != i + 1) {
      if (auto s = store_->truncate_to(i); !s.ok()) return s;
      break;
    }
    blocks_.push_back(std::move(*block));
  }
  info_.blocks_from_store = blocks_.size();

  // The store verified fewer blocks than the manifest recorded as durable
  // (media corruption under the fsync guarantee, or a lost file). Older
  // WAL frames below wal_start may still exist — prune keeps everything
  // back to the previous manifest generation — so restart the replay from
  // the start of the retained log and let the duplicate cross-check walk
  // the surviving prefix before extending it.
  if (manifest_block_count && blocks_.size() < *manifest_block_count) {
    replay_from = WalPosition{};
  }

  // Step 3: WAL tail replay. Stops (and truncates) at the first frame that
  // fails to decode, disagrees with a stored block, or leaves a gap.
  auto wal = Wal::open(*backend_, WalOptions{options_.wal_segment_bytes});
  if (!wal.ok()) return wal.error();
  wal_.emplace(std::move(*wal));
  std::optional<WalPosition> bad;
  Status replay_status = wal_->replay(replay_from, [&](const WalFrame& f) {
    if (f.type != kWalFrameBlock) return true;
    auto block = ledger::Block::decode(f.payload);
    if (!block.ok() || f.seq != block->header.height) {
      bad = f.start;
      return false;
    }
    const std::uint64_t h = block->header.height;
    if (h != 0 && h <= blocks_.size()) {
      // Re-persisted block (e.g. the commit crashed between WAL fsync and
      // store append in a previous life): must match what the store holds.
      if (blocks_[h - 1] != *block) {
        bad = f.start;
        return false;
      }
      return true;
    }
    if (h != blocks_.size() + 1) {  // gap (or height 0 — never logged)
      bad = f.start;
      return false;
    }
    wal_positions_[h] = f.start;
    blocks_.push_back(std::move(*block));
    ++info_.blocks_from_wal;
    return true;
  });
  if (!replay_status.ok()) return replay_status;
  if (bad) {
    if (auto s = wal_->truncate_from(*bad); !s.ok()) return s;
  }
  info_.wal_torn_bytes = wal_->torn_bytes_dropped();

  // Catch the store mirror up with WAL-only blocks. Volatile on purpose:
  // the WAL already holds them durably, and the next snapshot syncs.
  for (std::uint64_t h = store_->count() + 1; h <= blocks_.size(); ++h) {
    const Bytes encoded = blocks_[h - 1].encode();
    if (auto s = store_->append(BytesView(encoded)); !s.ok()) return s;
  }
  return Status::Ok();
}

Expected<std::uint64_t> LedgerStore::recover_chain(ledger::Blockchain& chain) {
  bool used_checkpoint = false;
  std::uint64_t final_height = 0;
  if (checkpoint_) {
    auto restored = chain.restore(blocks_, &*checkpoint_);
    if (restored.ok()) {
      used_checkpoint = true;
      final_height = *restored;
    } else {
      // Snapshot disagrees with the (independently verified) block chain:
      // distrust the snapshot, re-execute everything. restore() left the
      // chain untouched, so the retry starts clean.
      info_.checkpoint_rejected = true;
    }
  }
  if (!used_checkpoint) {
    auto restored = chain.restore(blocks_);
    if (!restored.ok()) return restored.error();
    final_height = *restored;
  }

  if (final_height < blocks_.size()) {
    // Blocks past the verified prefix are garbage — cut them out of the
    // store and the WAL so the next append extends clean ground.
    if (auto s = store_->truncate_to(final_height); !s.ok()) return s.error();
    auto it = wal_positions_.upper_bound(final_height);
    if (it != wal_positions_.end()) {
      if (auto s = wal_->truncate_from(it->second); !s.ok()) return s.error();
    }
    drop_stale_manifests(final_height);
  }
  if (!used_checkpoint) last_snapshot_height_ = 0;

  blocks_.clear();
  blocks_.shrink_to_fit();
  checkpoint_.reset();
  wal_positions_.clear();
  return final_height;
}

void LedgerStore::drop_stale_manifests(std::uint64_t final_height) {
  for (const std::string& name : backend_->list()) {
    std::uint64_t seq = 0;
    if (!parse_manifest_name(name, &seq)) continue;
    auto data = backend_->read_file(name);
    if (!data.ok()) continue;
    auto manifest = Manifest::decode(BytesView(*data));
    if (!manifest.ok() || manifest->snapshot_height <= final_height) continue;
    (void)backend_->remove(name);
    if (!manifest->snapshot_file.empty() &&
        backend_->exists(manifest->snapshot_file)) {
      (void)backend_->remove(manifest->snapshot_file);
    }
  }
  if (last_snapshot_height_ > final_height) last_snapshot_height_ = 0;
}

Status LedgerStore::append_block(const ledger::Block& block) {
  const Bytes encoded = block.encode();
  if (auto s = wal_->append(kWalFrameBlock, block.header.height,
                            BytesView(encoded));
      !s.ok()) {
    return s;
  }
  if (options_.trace) {
    options_.trace->record(obs::TraceEventType::kWalAppend,
                           options_.trace_replica, block.header.height, 0,
                           encoded.size());
  }
  ++appends_since_sync_;
  if (options_.group_commit != 0 &&
      appends_since_sync_ >= options_.group_commit) {
    const std::uint64_t batched = appends_since_sync_;
    if (auto s = wal_->sync(); !s.ok()) return s;
    appends_since_sync_ = 0;
    if (options_.trace) {
      options_.trace->record(obs::TraceEventType::kWalFsync,
                             options_.trace_replica, block.header.height, 0,
                             batched);
    }
  }
  return store_->append(BytesView(encoded));
}

Status LedgerStore::flush() {
  const std::uint64_t batched = appends_since_sync_;
  if (auto s = wal_->sync(); !s.ok()) return s;
  appends_since_sync_ = 0;
  if (options_.trace) {
    options_.trace->record(obs::TraceEventType::kWalFsync,
                           options_.trace_replica, store_->count(), 0, batched);
  }
  return Status::Ok();
}

Status LedgerStore::snapshot_now(const ledger::Blockchain& chain) {
  // Everything the manifest will point at must be durable before the
  // manifest becomes visible: WAL (replay start), store (block_count),
  // then the snapshot file itself.
  if (auto s = flush(); !s.ok()) return s;
  if (auto s = store_->sync(); !s.ok()) return s;

  const ledger::ChainCheckpoint cp = chain.checkpoint();
  const std::string snap_file = snapshot_name(cp.height);
  const Bytes snap_bytes = encode_snapshot(cp);
  if (auto s = backend_->write_file(kTmpName, BytesView(snap_bytes)); !s.ok()) {
    return s;
  }
  if (auto s = backend_->fsync(kTmpName); !s.ok()) return s;
  if (auto s = backend_->rename(kTmpName, snap_file); !s.ok()) return s;

  Manifest manifest;
  manifest.snapshot_height = cp.height;
  manifest.snapshot_file = snap_file;
  manifest.wal_start = wal_->end();
  manifest.block_count = store_->count();
  const Bytes manifest_bytes = manifest.encode();
  if (auto s = backend_->write_file(kTmpName, BytesView(manifest_bytes));
      !s.ok()) {
    return s;
  }
  if (auto s = backend_->fsync(kTmpName); !s.ok()) return s;
  if (auto s = backend_->rename(kTmpName, manifest_name(manifest_seq_));
      !s.ok()) {
    return s;
  }
  ++manifest_seq_;
  last_snapshot_height_ = cp.height;
  if (options_.trace) {
    options_.trace->record(obs::TraceEventType::kSnapshot,
                           options_.trace_replica, cp.height, 0,
                           snap_bytes.size());
  }
  return prune_after_snapshot();
}

Status LedgerStore::prune_after_snapshot() {
  std::vector<std::pair<std::uint64_t, std::string>> manifests;
  for (const std::string& name : backend_->list()) {
    std::uint64_t seq = 0;
    if (parse_manifest_name(name, &seq)) manifests.emplace_back(seq, name);
  }
  std::sort(manifests.rbegin(), manifests.rend());

  // Keep the newest generations; learn which snapshots they reference and
  // where the oldest kept one starts WAL replay.
  std::set<std::string> kept_snapshots;
  std::optional<WalPosition> oldest_start;
  for (std::size_t i = 0; i < manifests.size(); ++i) {
    const std::string& name = manifests[i].second;
    if (i >= options_.keep_manifests) {
      (void)backend_->remove(name);
      continue;
    }
    auto data = backend_->read_file(name);
    if (!data.ok()) continue;
    auto manifest = Manifest::decode(BytesView(*data));
    if (!manifest.ok()) continue;  // fallback generation is dead weight
    if (!manifest->snapshot_file.empty()) {
      kept_snapshots.insert(manifest->snapshot_file);
    }
    if (!oldest_start || manifest->wal_start < *oldest_start) {
      oldest_start = manifest->wal_start;
    }
  }
  for (const std::string& name : backend_->list()) {
    if (name.rfind("snap-", 0) == 0 && !kept_snapshots.contains(name)) {
      (void)backend_->remove(name);
    }
  }
  if (oldest_start) {
    if (auto s = wal_->prune_below(*oldest_start); !s.ok()) return s;
  }
  return Status::Ok();
}

Status LedgerStore::maybe_snapshot(const ledger::Blockchain& chain) {
  if (options_.snapshot_interval == 0) return Status::Ok();
  if (chain.height() < last_snapshot_height_ + options_.snapshot_interval) {
    return Status::Ok();
  }
  return snapshot_now(chain);
}

}  // namespace tnp::storage
