#include "storage/blockstore.hpp"

#include "storage/crc32.hpp"

namespace tnp::storage {

namespace {
constexpr std::size_t kFrameOverhead = 4 + 4;  // len + crc
constexpr std::uint64_t kMaxPayload = 64u << 20;
}  // namespace

Expected<BlockStore> BlockStore::open(FileBackend& backend) {
  BlockStore store(backend);
  if (!backend.exists(kFileName)) return store;
  auto data = backend.read_file(kFileName);
  if (!data.ok()) return data.error();
  store.image_ = std::move(*data);

  std::uint64_t pos = 0;
  while (pos < store.image_.size()) {
    const std::uint64_t remaining = store.image_.size() - pos;
    if (remaining < kFrameOverhead) break;
    ByteReader header(BytesView(store.image_.data() + pos, 4));
    const std::uint64_t len = header.u32().value_or(0);
    if (len > kMaxPayload || kFrameOverhead + len > remaining) break;
    const BytesView framed(store.image_.data() + pos, 4 + len);
    ByteReader crc_reader(BytesView(store.image_.data() + pos + 4 + len, 4));
    if (crc32(framed) != crc_reader.u32().value_or(0)) break;
    store.frames_.emplace_back(pos + 4, len);
    pos += kFrameOverhead + len;
  }
  if (pos < store.image_.size()) {
    // Torn or corrupt tail: cut it so future appends start on a frame
    // boundary.
    store.torn_bytes_dropped_ = store.image_.size() - pos;
    store.image_.resize(pos);
    if (auto s = backend.truncate(kFileName, pos); !s.ok()) return s.error();
  }
  return store;
}

Status BlockStore::append(BytesView encoded_block) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(encoded_block.size()));
  w.raw(encoded_block);
  w.u32(crc32(BytesView(w.data())));
  const Bytes frame = w.take();
  if (auto s = backend_->append(kFileName, BytesView(frame)); !s.ok()) {
    return s;
  }
  frames_.emplace_back(image_.size() + 4, encoded_block.size());
  image_.insert(image_.end(), frame.begin(), frame.end());
  dirty_ = true;
  return Status::Ok();
}

Status BlockStore::sync() {
  if (!dirty_) return Status::Ok();
  if (auto s = backend_->fsync(kFileName); !s.ok()) return s;
  dirty_ = false;
  return Status::Ok();
}

Expected<BytesView> BlockStore::at(std::uint64_t index) const {
  if (index >= frames_.size()) {
    return Error(ErrorCode::kOutOfRange, "block index past store end");
  }
  const auto& [offset, len] = frames_[index];
  return BytesView(image_.data() + offset, len);
}

Status BlockStore::truncate_to(std::uint64_t count) {
  if (count >= frames_.size()) return Status::Ok();
  const std::uint64_t new_size =
      count == 0 ? 0 : frames_[count].first - 4;
  frames_.resize(count);
  image_.resize(new_size);
  return backend_->truncate(kFileName, new_size);
}

}  // namespace tnp::storage
