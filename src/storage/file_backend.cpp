#include "storage/file_backend.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <dirent.h>

namespace tnp::storage {

namespace {

Status not_found(const std::string& name) {
  return Status(ErrorCode::kNotFound, "no such file: " + name);
}

Status device_dead() {
  return Status(ErrorCode::kUnavailable, "storage device lost power");
}

}  // namespace

// --------------------------------------------------------- MemoryBackend

bool MemoryBackend::admit_mutation() {
  if (dead_) return false;
  if (cut_armed_) {
    if (cut_budget_ == 0) {
      dead_ = true;
      cut_armed_ = false;
      return false;
    }
    --cut_budget_;
  }
  return true;
}

Status MemoryBackend::append(const std::string& name, BytesView data) {
  if (!admit_mutation()) {
    if (dead_ && torn_bytes_ > 0) {
      // The fatal write physically tore: a prefix reached the platter and
      // will survive the power cycle even though fsync never returned.
      File& f = files_[name];
      const std::size_t torn =
          std::min<std::size_t>(torn_bytes_, data.size());
      f.data.insert(f.data.end(), data.begin(), data.begin() + torn);
      f.durable = f.data.size();
      torn_bytes_ = 0;  // one torn fragment per cut
    }
    return device_dead();
  }
  ++stats_.appends;
  stats_.bytes_written += data.size();
  File& f = files_[name];
  f.data.insert(f.data.end(), data.begin(), data.end());
  return Status::Ok();
}

Status MemoryBackend::write_file(const std::string& name, BytesView data) {
  if (!admit_mutation()) {
    if (dead_ && torn_bytes_ > 0) {
      File& f = files_[name];
      const std::size_t torn =
          std::min<std::size_t>(torn_bytes_, data.size());
      f.data.assign(data.begin(), data.begin() + torn);
      f.durable = f.data.size();
      torn_bytes_ = 0;
    }
    return device_dead();
  }
  ++stats_.writes;
  stats_.bytes_written += data.size();
  File& f = files_[name];
  f.data.assign(data.begin(), data.end());
  f.durable = 0;  // full rewrite: nothing durable until the next fsync
  return Status::Ok();
}

Status MemoryBackend::fsync(const std::string& name) {
  if (!admit_mutation()) return device_dead();
  ++stats_.fsyncs;
  const auto it = files_.find(name);
  if (it == files_.end()) return not_found(name);
  it->second.durable = it->second.data.size();
  return Status::Ok();
}

Status MemoryBackend::rename(const std::string& from, const std::string& to) {
  if (!admit_mutation()) return device_dead();
  ++stats_.renames;
  const auto it = files_.find(from);
  if (it == files_.end()) return not_found(from);
  File moved = std::move(it->second);
  files_.erase(it);
  files_[to] = std::move(moved);
  return Status::Ok();
}

Status MemoryBackend::remove(const std::string& name) {
  if (!admit_mutation()) return device_dead();
  ++stats_.removes;
  if (files_.erase(name) == 0) return not_found(name);
  return Status::Ok();
}

Status MemoryBackend::truncate(const std::string& name, std::uint64_t size) {
  if (!admit_mutation()) return device_dead();
  ++stats_.truncates;
  const auto it = files_.find(name);
  if (it == files_.end()) return not_found(name);
  File& f = it->second;
  if (size < f.data.size()) f.data.resize(size);
  // Truncation is a metadata operation: the new (shorter) length is the
  // durable one, and the retained prefix keeps its durability watermark.
  f.durable = std::min<std::size_t>(f.durable, f.data.size());
  return Status::Ok();
}

Expected<Bytes> MemoryBackend::read_file(const std::string& name) const {
  const auto it = files_.find(name);
  if (it == files_.end()) {
    return Error(ErrorCode::kNotFound, "no such file: " + name);
  }
  return it->second.data;
}

Expected<std::uint64_t> MemoryBackend::size(const std::string& name) const {
  const auto it = files_.find(name);
  if (it == files_.end()) {
    return Error(ErrorCode::kNotFound, "no such file: " + name);
  }
  return static_cast<std::uint64_t>(it->second.data.size());
}

bool MemoryBackend::exists(const std::string& name) const {
  return files_.contains(name);
}

std::vector<std::string> MemoryBackend::list() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, file] : files_) names.push_back(name);
  return names;  // std::map iterates sorted
}

const BackendStats& MemoryBackend::stats() const { return stats_; }

void MemoryBackend::set_power_cut(std::uint64_t ops_from_now,
                                  std::uint64_t torn_bytes) {
  cut_armed_ = true;
  cut_budget_ = ops_from_now;
  torn_bytes_ = torn_bytes;
}

void MemoryBackend::power_cycle() {
  for (auto& [name, file] : files_) file.data.resize(file.durable);
  dead_ = false;
  cut_armed_ = false;
  cut_budget_ = 0;
  torn_bytes_ = 0;
}

Status MemoryBackend::corrupt(const std::string& name, std::uint64_t offset,
                              std::uint8_t mask) {
  const auto it = files_.find(name);
  if (it == files_.end()) return not_found(name);
  if (offset >= it->second.data.size()) {
    return Status(ErrorCode::kOutOfRange, "corrupt offset past EOF");
  }
  it->second.data[offset] ^= mask;
  return Status::Ok();
}

// ----------------------------------------------------------- DiskBackend

DiskBackend::DiskBackend(std::string root) : root_(std::move(root)) {
  ::mkdir(root_.c_str(), 0755);  // best effort; ops report real failures
}

DiskBackend::~DiskBackend() {
  for (auto& [name, fd] : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

std::string DiskBackend::path(const std::string& name) const {
  return root_ + "/" + name;
}

int DiskBackend::fd_for(const std::string& name) {
  const auto it = fds_.find(name);
  if (it != fds_.end()) return it->second;
  const int fd =
      ::open(path(name).c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  fds_[name] = fd;
  return fd;
}

void DiskBackend::close_fd(const std::string& name) {
  const auto it = fds_.find(name);
  if (it != fds_.end()) {
    if (it->second >= 0) ::close(it->second);
    fds_.erase(it);
  }
}

Status DiskBackend::append(const std::string& name, BytesView data) {
  const int fd = fd_for(name);
  if (fd < 0) {
    return Status(ErrorCode::kInternal,
                  "open failed: " + name + ": " + std::strerror(errno));
  }
  ++stats_.appends;
  stats_.bytes_written += data.size();
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      return Status(ErrorCode::kInternal,
                    "write failed: " + name + ": " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status DiskBackend::write_file(const std::string& name, BytesView data) {
  close_fd(name);
  const int fd =
      ::open(path(name).c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status(ErrorCode::kInternal,
                  "open failed: " + name + ": " + std::strerror(errno));
  }
  ++stats_.writes;
  stats_.bytes_written += data.size();
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      ::close(fd);
      return Status(ErrorCode::kInternal,
                    "write failed: " + name + ": " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return Status::Ok();
}

Status DiskBackend::fsync(const std::string& name) {
  const int fd = fd_for(name);
  if (fd < 0) return not_found(name);
  ++stats_.fsyncs;
  if (::fsync(fd) != 0) {
    return Status(ErrorCode::kInternal,
                  "fsync failed: " + name + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

Status DiskBackend::rename(const std::string& from, const std::string& to) {
  close_fd(from);
  close_fd(to);
  ++stats_.renames;
  if (::rename(path(from).c_str(), path(to).c_str()) != 0) {
    return Status(ErrorCode::kInternal,
                  "rename failed: " + from + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

Status DiskBackend::remove(const std::string& name) {
  close_fd(name);
  ++stats_.removes;
  if (::unlink(path(name).c_str()) != 0) return not_found(name);
  return Status::Ok();
}

Status DiskBackend::truncate(const std::string& name, std::uint64_t size) {
  ++stats_.truncates;
  if (::truncate(path(name).c_str(), static_cast<off_t>(size)) != 0) {
    return Status(ErrorCode::kInternal,
                  "truncate failed: " + name + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

Expected<Bytes> DiskBackend::read_file(const std::string& name) const {
  const int fd = ::open(path(name).c_str(), O_RDONLY);
  if (fd < 0) return Error(ErrorCode::kNotFound, "no such file: " + name);
  Bytes out;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      ::close(fd);
      return Error(ErrorCode::kInternal,
                   "read failed: " + name + ": " + std::strerror(errno));
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return out;
}

Expected<std::uint64_t> DiskBackend::size(const std::string& name) const {
  struct stat st{};
  if (::stat(path(name).c_str(), &st) != 0) {
    return Error(ErrorCode::kNotFound, "no such file: " + name);
  }
  return static_cast<std::uint64_t>(st.st_size);
}

bool DiskBackend::exists(const std::string& name) const {
  struct stat st{};
  return ::stat(path(name).c_str(), &st) == 0;
}

std::vector<std::string> DiskBackend::list() const {
  std::vector<std::string> names;
  DIR* dir = ::opendir(root_.c_str());
  if (!dir) return names;
  while (const dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

const BackendStats& DiskBackend::stats() const { return stats_; }

}  // namespace tnp::storage
