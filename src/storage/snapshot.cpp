#include "storage/snapshot.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "storage/crc32.hpp"

namespace tnp::storage {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x534E5054;  // "SNPT"
constexpr std::uint32_t kManifestMagic = 0x4D464E54;  // "MFNT"
constexpr std::uint32_t kFormatVersion = 1;

Bytes armor(std::uint32_t magic, Bytes payload) {
  ByteWriter w;
  w.u32(magic);
  w.u32(kFormatVersion);
  w.raw(BytesView(payload));
  w.u32(crc32(BytesView(w.data())));
  return w.take();
}

Expected<BytesView> unarmor(std::uint32_t magic, BytesView data) {
  if (data.size() < 12) {
    return Error(ErrorCode::kCorruptData, "record too short");
  }
  ByteReader header(data.first(8));
  if (header.u32().value_or(0) != magic) {
    return Error(ErrorCode::kCorruptData, "bad magic");
  }
  if (header.u32().value_or(0) != kFormatVersion) {
    return Error(ErrorCode::kCorruptData, "unsupported format version");
  }
  ByteReader crc_reader(data.last(4));
  if (crc32(data.first(data.size() - 4)) != crc_reader.u32().value_or(0)) {
    return Error(ErrorCode::kCorruptData, "CRC mismatch");
  }
  return data.subspan(8, data.size() - 12);
}

}  // namespace

Bytes encode_snapshot(const ledger::ChainCheckpoint& cp) {
  ByteWriter w;
  w.u64(cp.height);
  w.raw(cp.tip_hash.view());
  w.raw(cp.state.root().view());  // decode cross-checks the rebuilt root
  w.u64(cp.total_gas_used);
  w.u64(cp.tx_count);
  std::uint32_t entries = 0;
  cp.state.scan_prefix("", [&entries](const std::string&, const Bytes&) {
    ++entries;
    return true;
  });
  w.u32(entries);
  cp.state.scan_prefix("", [&w](const std::string& key, const Bytes& value) {
    w.str(key);
    w.bytes(BytesView(value));
    return true;
  });
  w.u32(static_cast<std::uint32_t>(cp.results.size()));
  for (const ledger::BlockResult& result : cp.results) {
    w.u32(static_cast<std::uint32_t>(result.receipts.size()));
    for (const ledger::Receipt& r : result.receipts) {
      w.raw(r.tx_id.view());
      w.u8(r.success ? 1 : 0);
      w.u64(r.gas_used);
      w.str(r.error);
    }
    w.u32(static_cast<std::uint32_t>(result.events.size()));
    for (const ledger::Event& e : result.events) {
      w.str(e.name);
      w.bytes(BytesView(e.data));
    }
  }
  return armor(kSnapshotMagic, w.take());
}

Expected<ledger::ChainCheckpoint> decode_snapshot(BytesView data) {
  auto payload = unarmor(kSnapshotMagic, data);
  if (!payload.ok()) return payload.error();
  ByteReader r(*payload);
  ledger::ChainCheckpoint cp;
  auto height = r.u64();
  if (!height) return height.error();
  cp.height = *height;
  auto tip = r.raw(32);
  if (!tip) return tip.error();
  std::copy(tip->begin(), tip->end(), cp.tip_hash.bytes.begin());
  auto root = r.raw(32);
  if (!root) return root.error();
  Hash256 recorded_root;
  std::copy(root->begin(), root->end(), recorded_root.bytes.begin());
  auto gas = r.u64();
  if (!gas) return gas.error();
  cp.total_gas_used = *gas;
  auto txs = r.u64();
  if (!txs) return txs.error();
  cp.tx_count = *txs;
  auto entries = r.u32();
  if (!entries) return entries.error();
  for (std::uint32_t i = 0; i < *entries; ++i) {
    auto key = r.str();
    if (!key) return key.error();
    auto value = r.bytes();
    if (!value) return value.error();
    cp.state.set(*key, std::move(*value));
  }
  if (cp.state.root() != recorded_root) {
    return Error(ErrorCode::kCorruptData, "snapshot state root mismatch");
  }
  auto result_count = r.u32();
  if (!result_count) return result_count.error();
  cp.results.reserve(*result_count);
  for (std::uint32_t i = 0; i < *result_count; ++i) {
    ledger::BlockResult result;
    auto receipts = r.u32();
    if (!receipts) return receipts.error();
    for (std::uint32_t j = 0; j < *receipts; ++j) {
      ledger::Receipt receipt;
      auto id = r.raw(32);
      if (!id) return id.error();
      std::copy(id->begin(), id->end(), receipt.tx_id.bytes.begin());
      auto success = r.u8();
      if (!success) return success.error();
      receipt.success = *success != 0;
      auto used = r.u64();
      if (!used) return used.error();
      receipt.gas_used = *used;
      auto error = r.str();
      if (!error) return error.error();
      receipt.error = std::move(*error);
      result.receipts.push_back(std::move(receipt));
    }
    auto events = r.u32();
    if (!events) return events.error();
    for (std::uint32_t j = 0; j < *events; ++j) {
      ledger::Event event;
      auto name = r.str();
      if (!name) return name.error();
      event.name = std::move(*name);
      auto bytes = r.bytes();
      if (!bytes) return bytes.error();
      event.data = std::move(*bytes);
      result.events.push_back(std::move(event));
    }
    cp.results.push_back(std::move(result));
  }
  if (!r.done()) {
    return Error(ErrorCode::kCorruptData, "trailing bytes after snapshot");
  }
  return cp;
}

Bytes Manifest::encode() const {
  ByteWriter w;
  w.u64(snapshot_height);
  w.str(snapshot_file);
  w.u64(wal_start.segment);
  w.u64(wal_start.offset);
  w.u64(block_count);
  return armor(kManifestMagic, w.take());
}

Expected<Manifest> Manifest::decode(BytesView data) {
  auto payload = unarmor(kManifestMagic, data);
  if (!payload.ok()) return payload.error();
  ByteReader r(*payload);
  Manifest m;
  auto height = r.u64();
  if (!height) return height.error();
  m.snapshot_height = *height;
  auto file = r.str();
  if (!file) return file.error();
  m.snapshot_file = std::move(*file);
  auto segment = r.u64();
  if (!segment) return segment.error();
  m.wal_start.segment = *segment;
  auto offset = r.u64();
  if (!offset) return offset.error();
  m.wal_start.offset = *offset;
  auto blocks = r.u64();
  if (!blocks) return blocks.error();
  m.block_count = *blocks;
  if (!r.done()) {
    return Error(ErrorCode::kCorruptData, "trailing bytes after manifest");
  }
  return m;
}

std::string snapshot_name(std::uint64_t height) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "snap-%016llu.snap",
                static_cast<unsigned long long>(height));
  return buf;
}

std::string manifest_name(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "manifest-%010llu",
                static_cast<unsigned long long>(seq));
  return buf;
}

bool parse_manifest_name(const std::string& name, std::uint64_t* seq) {
  constexpr std::string_view kPrefix = "manifest-";
  if (name.size() != kPrefix.size() + 10) return false;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  std::uint64_t parsed = 0;
  for (std::size_t i = kPrefix.size(); i < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return false;
    parsed = parsed * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  *seq = parsed;
  return true;
}

}  // namespace tnp::storage
