#include "storage/wal.hpp"

#include <algorithm>
#include <cstdio>

#include "storage/crc32.hpp"

namespace tnp::storage {

namespace {

constexpr std::size_t kFrameHeader = 4 + 1 + 8;  // len + type + seq
constexpr std::size_t kFrameOverhead = kFrameHeader + 4;  // + crc
/// Upper bound on a single frame payload — a length field beyond this is
/// treated as garbage (torn write), not an allocation request.
constexpr std::uint64_t kMaxPayload = 64u << 20;

}  // namespace

std::string Wal::segment_name(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%010llu.log",
                static_cast<unsigned long long>(id));
  return buf;
}

bool Wal::parse_segment_name(const std::string& name, std::uint64_t* id) {
  unsigned long long parsed = 0;
  if (name.size() != 4 + 10 + 4) return false;
  if (std::sscanf(name.c_str(), "wal-%10llu.log", &parsed) != 1) return false;
  *id = parsed;
  return true;
}

Expected<Wal> Wal::open(FileBackend& backend, WalOptions options) {
  Wal wal(backend, options);
  for (const std::string& name : backend.list()) {
    std::uint64_t id = 0;
    if (parse_segment_name(name, &id)) wal.segments_.push_back(id);
  }
  std::sort(wal.segments_.begin(), wal.segments_.end());
  if (!wal.segments_.empty()) {
    wal.current_segment_ = wal.segments_.back();
    auto size = backend.size(segment_name(wal.current_segment_));
    if (!size.ok()) return size.error();
    wal.current_size_ = *size;
  }
  return wal;
}

Status Wal::append(std::uint8_t type, std::uint64_t seq, BytesView payload) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u8(type);
  w.u64(seq);
  w.raw(payload);
  w.u32(crc32(BytesView(w.data())));
  const Bytes frame = w.take();

  if (current_size_ > 0 &&
      current_size_ + frame.size() > options_.segment_bytes) {
    // Rotate. The outgoing segment is fsynced first so a torn tail can
    // only ever live in the newest segment.
    if (auto s = sync(); !s.ok()) return s;
    ++current_segment_;
    current_size_ = 0;
  }
  if (auto s = backend_->append(segment_name(current_segment_),
                                BytesView(frame));
      !s.ok()) {
    return s;
  }
  if (segments_.empty() || segments_.back() != current_segment_) {
    segments_.push_back(current_segment_);
  }
  current_size_ += frame.size();
  dirty_ = true;
  return Status::Ok();
}

Status Wal::sync() {
  if (!dirty_) return Status::Ok();
  if (auto s = backend_->fsync(segment_name(current_segment_)); !s.ok()) {
    return s;
  }
  dirty_ = false;
  return Status::Ok();
}

Status Wal::replay(WalPosition from,
                   const std::function<bool(const WalFrame&)>& fn) {
  torn_bytes_dropped_ = 0;
  if (segments_.empty()) return Status::Ok();

  // Locate the starting segment; a pruned start falls forward to the first
  // surviving segment (its offset is meaningless there, so restart at 0).
  auto it = std::lower_bound(segments_.begin(), segments_.end(), from.segment);
  if (it == segments_.end()) return Status::Ok();
  std::uint64_t offset = (*it == from.segment) ? from.offset : 0;

  std::uint64_t expected_next = *it;  // detect id gaps between segments
  for (; it != segments_.end(); ++it, offset = 0) {
    if (*it != expected_next) {
      // A missing segment means everything after the gap is unusable.
      return truncate_from({expected_next, 0});
    }
    expected_next = *it + 1;

    auto data = backend_->read_file(segment_name(*it));
    if (!data.ok()) return truncate_from({*it, 0});
    const Bytes& bytes = *data;
    if (offset > bytes.size()) return truncate_from({*it, bytes.size()});

    std::uint64_t pos = offset;
    while (pos < bytes.size()) {
      const std::uint64_t remaining = bytes.size() - pos;
      if (remaining < kFrameOverhead) return truncate_from({*it, pos});
      ByteReader header(BytesView(bytes.data() + pos, kFrameHeader));
      const std::uint64_t len = header.u32().value_or(0);
      const std::uint8_t type = header.u8().value_or(0);
      const std::uint64_t seq = header.u64().value_or(0);
      if (len > kMaxPayload || kFrameOverhead + len > remaining) {
        return truncate_from({*it, pos});
      }
      const std::uint64_t frame_size = kFrameOverhead + len;
      const BytesView framed(bytes.data() + pos, kFrameHeader + len);
      ByteReader crc_reader(
          BytesView(bytes.data() + pos + kFrameHeader + len, 4));
      if (crc32(framed) != crc_reader.u32().value_or(0)) {
        return truncate_from({*it, pos});
      }
      WalFrame frame;
      frame.type = type;
      frame.seq = seq;
      frame.payload = BytesView(bytes.data() + pos + kFrameHeader, len);
      frame.start = {*it, pos};
      if (!fn(frame)) return Status::Ok();
      pos += frame_size;
    }
  }
  return Status::Ok();
}

Status Wal::truncate_from(WalPosition pos) {
  // Account for what is being dropped (diagnostics only; best effort).
  for (const std::uint64_t id : segments_) {
    if (id < pos.segment) continue;
    const auto size = backend_->size(segment_name(id));
    if (!size.ok()) continue;
    torn_bytes_dropped_ +=
        id == pos.segment ? (*size > pos.offset ? *size - pos.offset : 0)
                          : *size;
  }
  // Remove later segments entirely, newest first.
  while (!segments_.empty() && segments_.back() > pos.segment) {
    if (auto s = backend_->remove(segment_name(segments_.back())); !s.ok()) {
      return s;
    }
    segments_.pop_back();
  }
  if (!segments_.empty() && segments_.back() == pos.segment) {
    if (auto s = backend_->truncate(segment_name(pos.segment), pos.offset);
        !s.ok()) {
      return s;
    }
  }
  current_segment_ = pos.segment;
  current_size_ = pos.offset;
  dirty_ = false;
  return Status::Ok();
}

Status Wal::prune_below(WalPosition pos) {
  while (!segments_.empty() && segments_.front() < pos.segment) {
    if (auto s = backend_->remove(segment_name(segments_.front())); !s.ok()) {
      return s;
    }
    segments_.erase(segments_.begin());
  }
  return Status::Ok();
}

}  // namespace tnp::storage
