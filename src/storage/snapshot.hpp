// On-disk codecs for state snapshots and the manifest.
//
// Both are whole-file records with the same armor:
//   u32 magic | u32 version | payload | u32 crc(everything before)
// written tmp-file → fsync → atomic rename, so a crash mid-write leaves
// either the old file or the new one, never a half state. Decoding
// verifies magic/version/CRC and, for snapshots, recomputes the state
// root from the decoded entries — a snapshot that does not re-derive its
// own commitment is rejected as corrupt, never loaded.
//
// The manifest is the recovery bootstrap record: which snapshot to load,
// where WAL replay starts, and how many blocks the store durably held
// when it was written. Manifests are numbered (manifest-<n>); the engine
// keeps the newest two so a corrupt newest manifest falls back one
// generation instead of forcing a from-genesis replay.
#pragma once

#include <string>

#include "ledger/chain.hpp"
#include "storage/wal.hpp"

namespace tnp::storage {

[[nodiscard]] Bytes encode_snapshot(const ledger::ChainCheckpoint& cp);
[[nodiscard]] Expected<ledger::ChainCheckpoint> decode_snapshot(BytesView data);

struct Manifest {
  std::uint64_t snapshot_height = 0;
  std::string snapshot_file;  // empty = no snapshot (replay from genesis)
  WalPosition wal_start{};    // WAL replay begins here
  std::uint64_t block_count = 0;  // durable block-store frames at write time

  [[nodiscard]] Bytes encode() const;
  static Expected<Manifest> decode(BytesView data);
};

[[nodiscard]] std::string snapshot_name(std::uint64_t height);
[[nodiscard]] std::string manifest_name(std::uint64_t seq);
/// Parses the sequence number out of a manifest file name.
[[nodiscard]] bool parse_manifest_name(const std::string& name,
                                       std::uint64_t* seq);

}  // namespace tnp::storage
