// Write-ahead log: CRC-framed, length-prefixed, append-only, segmented.
//
// Frame layout (all integers little-endian):
//   u32 payload_len | u8 type | u64 seq | payload | u32 crc
// with the CRC taken over everything before it. Segments are files named
// wal-<id>.log (fixed-width decimal, so lexical order == numeric order);
// the log rotates to a fresh segment once the current one exceeds
// segment_bytes, fsyncing the old segment first — which is what makes
// "only the newest segment can be torn" an invariant recovery relies on.
//
// Durability: append() buffers in the file layer; sync() is the explicit
// fsync point. Group commit is the caller batching k appends per sync.
// Recovery replays frames from a position and stops at the FIRST invalid
// frame (bad length, CRC mismatch, truncated tail, missing segment); the
// torn/corrupt suffix is then physically truncated so later appends write
// over clean ground.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/file_backend.hpp"

namespace tnp::storage {

/// Frame types. The ledger engine only logs committed blocks, but the
/// framing is generic so future record kinds don't bump the format.
constexpr std::uint8_t kWalFrameBlock = 1;

struct WalPosition {
  std::uint64_t segment = 0;
  std::uint64_t offset = 0;

  friend auto operator<=>(const WalPosition&, const WalPosition&) = default;
};

struct WalOptions {
  std::uint64_t segment_bytes = 4u << 20;
};

struct WalFrame {
  std::uint8_t type = 0;
  std::uint64_t seq = 0;
  BytesView payload{};
  WalPosition start{};  // where the frame begins (truncation coordinate)
};

class Wal {
 public:
  /// Scans existing wal-*.log files and positions the append cursor at the
  /// end of the newest segment. Creates nothing until the first append.
  static Expected<Wal> open(FileBackend& backend, WalOptions options = {});

  /// Appends one frame (volatile until sync()). Rotates segments as
  /// configured, fsyncing the outgoing segment before the switch.
  Status append(std::uint8_t type, std::uint64_t seq, BytesView payload);

  /// fsyncs the current segment if any appends are pending.
  Status sync();

  /// Position one past the last appended byte.
  [[nodiscard]] WalPosition end() const {
    return {current_segment_, current_size_};
  }

  /// Replays frames from `from` in order, invoking `fn` per frame (return
  /// false to stop early). Stops at the first invalid frame and truncates
  /// the suffix from there. If `from` points into a pruned segment the
  /// replay starts at the first existing segment after it.
  Status replay(WalPosition from, const std::function<bool(const WalFrame&)>& fn);

  /// Cuts the log at `pos`: later segments are removed, the segment at
  /// `pos` is truncated, and the append cursor moves to `pos`.
  Status truncate_from(WalPosition pos);

  /// Removes whole segments strictly below `pos.segment` (snapshot
  /// pruning; the segment containing the replay start always survives).
  Status prune_below(WalPosition pos);

  /// Bytes discarded by the last replay()'s tail truncation (diagnostics).
  [[nodiscard]] std::uint64_t torn_bytes_dropped() const {
    return torn_bytes_dropped_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& segments() const {
    return segments_;
  }

  static std::string segment_name(std::uint64_t id);
  /// Parses a segment id out of a file name; false if not a segment file.
  static bool parse_segment_name(const std::string& name, std::uint64_t* id);

 private:
  explicit Wal(FileBackend& backend, WalOptions options)
      : backend_(&backend), options_(options) {}

  FileBackend* backend_;
  WalOptions options_;
  std::vector<std::uint64_t> segments_;  // sorted ids of existing segments
  std::uint64_t current_segment_ = 0;
  std::uint64_t current_size_ = 0;
  bool dirty_ = false;
  std::uint64_t torn_bytes_dropped_ = 0;
};

}  // namespace tnp::storage
