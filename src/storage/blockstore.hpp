// Append-only block store: the long-term home of committed block bodies.
//
// One file (blocks.dat) of CRC frames `u32 len | payload | u32 crc`, one
// frame per block, heights 1..count() in file order (genesis is derived,
// never stored). There is no on-disk index: open() scans the file once,
// truncates any torn/corrupt tail at the first bad frame, and rebuilds the
// offset index in memory — the log-structured trade: O(file) open, O(1)
// append, zero index-maintenance write amplification.
//
// Appends are volatile until sync(); the engine fsyncs the store only at
// snapshot points, because the WAL already made every committed block
// durable — the store is a read-optimized mirror, not the commit record.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "storage/file_backend.hpp"

namespace tnp::storage {

class BlockStore {
 public:
  static constexpr const char* kFileName = "blocks.dat";

  /// Scans blocks.dat (absent file = empty store), truncating the file at
  /// the first invalid frame.
  static Expected<BlockStore> open(FileBackend& backend);

  /// Appends one encoded block (volatile until sync()).
  Status append(BytesView encoded_block);
  Status sync();

  [[nodiscard]] std::uint64_t count() const { return frames_.size(); }

  /// Payload of the index-th block (0-based ⇒ height index+1). The view
  /// borrows the store's in-memory image; it is invalidated by append/
  /// truncate_to.
  [[nodiscard]] Expected<BytesView> at(std::uint64_t index) const;

  /// Drops blocks from the tail until count() == `count` (on disk too).
  Status truncate_to(std::uint64_t count);

  /// Bytes discarded by open()'s tail truncation (diagnostics).
  [[nodiscard]] std::uint64_t torn_bytes_dropped() const {
    return torn_bytes_dropped_;
  }

 private:
  explicit BlockStore(FileBackend& backend) : backend_(&backend) {}

  FileBackend* backend_;
  Bytes image_;  // validated file contents (mirrors blocks.dat)
  std::vector<std::pair<std::uint64_t, std::uint64_t>> frames_;  // off, len
  bool dirty_ = false;
  std::uint64_t torn_bytes_dropped_ = 0;
};

}  // namespace tnp::storage
