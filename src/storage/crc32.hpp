// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-frame
// integrity check for every on-disk structure (WAL frames, block-store
// frames, snapshots, manifests). A CRC is the right tool here: it catches
// torn writes and media bit-rot cheaply; end-to-end *content* integrity is
// separately enforced by block-hash chaining during recovery.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace tnp::storage {

[[nodiscard]] std::uint32_t crc32(BytesView data, std::uint32_t seed = 0);

}  // namespace tnp::storage
