// The durable ledger engine: WAL + block store + snapshots, glued into one
// recovery story.
//
// Write path (append_block): the encoded block goes to the WAL first; after
// `group_commit` appends the WAL is fsynced — at group_commit=1 an Ok
// return means the block is durable. The block store is a read-optimized
// mirror appended second and fsynced only at snapshot points, because the
// WAL is the commit record.
//
// Recovery (open):
//   1. Pick the newest manifest whose armor AND snapshot decode verify,
//      falling back one generation per failure, then to a full scan.
//   2. Open the block store (scan, truncate torn tail), decoding blocks
//      until the first undecodable or out-of-sequence frame.
//   3. Replay the WAL from the manifest's start position. Frames at or
//      below the store height must match the stored block exactly
//      (a duplicate final frame is skipped); the next height extends the
//      chain; a gap, mismatch, or undecodable payload stops the replay and
//      the suffix is truncated.
//   4. recover_chain() hands the surviving blocks to Blockchain::restore,
//      which re-verifies hash chaining + tx roots and re-executes anything
//      past the checkpoint. If fewer blocks survive than were read, store
//      and WAL are truncated to the exact verified prefix.
//
// The invariant the crash harness proves: after any power cut, recovery
// yields an exact prefix of the committed chain, at least as long as the
// last acknowledged (fsynced) block.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "ledger/chain.hpp"
#include "storage/blockstore.hpp"
#include "storage/snapshot.hpp"
#include "storage/wal.hpp"

namespace tnp::obs {
class TraceRecorder;
}

namespace tnp::storage {

struct StoreOptions {
  std::uint64_t wal_segment_bytes = 4u << 20;
  /// fsync the WAL every N block appends. 1 = durable-per-block (what the
  /// consensus layer uses: persist before ack). 0 = only on flush()/
  /// snapshot — the caller owns the sync points.
  std::uint64_t group_commit = 1;
  /// Snapshot every N blocks via maybe_snapshot(). 0 = never automatic.
  std::uint64_t snapshot_interval = 0;
  /// Manifest generations to keep (newest N). Minimum 1.
  std::uint64_t keep_manifests = 2;
  /// Optional structured-event sink (src/obs; not owned, must outlive the
  /// store): WAL appends, WAL fsyncs, and snapshots are recorded tagged
  /// with `trace_replica`.
  obs::TraceRecorder* trace = nullptr;
  std::uint32_t trace_replica = 0;
};

/// What recovery found — diagnostics for tests and operators.
struct RecoveryInfo {
  std::uint64_t snapshot_height = 0;   // 0 = recovered without a snapshot
  std::uint64_t blocks_from_store = 0;
  std::uint64_t blocks_from_wal = 0;   // blocks only the WAL still had
  std::uint64_t wal_torn_bytes = 0;
  std::uint64_t store_torn_bytes = 0;
  std::uint64_t manifests_rejected = 0;  // corrupt generations skipped
  bool checkpoint_rejected = false;      // snapshot failed cross-checks
};

class LedgerStore {
 public:
  /// Opens the store and runs steps 1-3 of recovery (see file comment).
  /// The backend is shared because it outlives the engine across simulated
  /// crashes: the harness keeps the "disk" and reopens a fresh engine.
  static Expected<std::unique_ptr<LedgerStore>> open(
      std::shared_ptr<FileBackend> backend, StoreOptions options = {});

  /// Blocks surviving steps 1-3, heights 1..blocks().size() (consumed by
  /// recover_chain).
  [[nodiscard]] const std::vector<ledger::Block>& blocks() const {
    return blocks_;
  }
  [[nodiscard]] const RecoveryInfo& recovery() const { return info_; }

  /// Step 4: restores `chain` (which must be fresh — constructed and, if
  /// the deployment seeds genesis state, seeded exactly as the original)
  /// from the recovered blocks. Tries the snapshot checkpoint first and
  /// falls back to full re-execution if the chain rejects it. Truncates
  /// store/WAL down to the verified prefix. Returns the recovered height.
  Expected<std::uint64_t> recover_chain(ledger::Blockchain& chain);

  /// Persists one committed block. With group_commit == 1, Ok means the
  /// block is durable (will survive a power cut).
  Status append_block(const ledger::Block& block);

  /// Forces the WAL to disk (ends any open group-commit window).
  Status flush();

  /// Writes a snapshot + manifest for the chain's current height (tmp →
  /// fsync → rename), then prunes old manifests, orphan snapshots, and WAL
  /// segments below the oldest kept manifest's replay start.
  Status snapshot_now(const ledger::Blockchain& chain);

  /// snapshot_now() if the chain has advanced snapshot_interval blocks
  /// since the last snapshot. No-op when the interval is 0.
  Status maybe_snapshot(const ledger::Blockchain& chain);

  [[nodiscard]] std::uint64_t block_count() const { return store_->count(); }
  [[nodiscard]] WalPosition wal_end() const { return wal_->end(); }
  [[nodiscard]] std::uint64_t last_snapshot_height() const {
    return last_snapshot_height_;
  }

 private:
  LedgerStore(std::shared_ptr<FileBackend> backend, StoreOptions options)
      : backend_(std::move(backend)), options_(options) {}

  Status recover();
  /// Removes manifests (and their snapshots) claiming heights beyond the
  /// verified prefix, so the next recovery does not chase a stale one.
  void drop_stale_manifests(std::uint64_t final_height);
  Status prune_after_snapshot();

  std::shared_ptr<FileBackend> backend_;
  StoreOptions options_;
  std::optional<Wal> wal_;
  std::optional<BlockStore> store_;

  // Recovery artifacts (cleared by recover_chain).
  std::vector<ledger::Block> blocks_;
  std::optional<ledger::ChainCheckpoint> checkpoint_;
  std::map<std::uint64_t, WalPosition> wal_positions_;  // height -> frame
  RecoveryInfo info_;

  std::uint64_t manifest_seq_ = 0;  // next manifest number to write
  std::uint64_t appends_since_sync_ = 0;
  std::uint64_t last_snapshot_height_ = 0;
};

}  // namespace tnp::storage
