// Blocks: header + ordered transactions. The header commits to the parent
// hash (chain integrity), the transaction Merkle root (content integrity)
// and the post-execution state root (replica agreement). The paper's
// "record is immutable and any change is easy to detect" property reduces
// to these three commitments.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/merkle.hpp"
#include "ledger/transaction.hpp"
#include "sim/simulator.hpp"

namespace tnp::ledger {

struct BlockHeader {
  std::uint64_t height = 0;
  Hash256 parent{};
  Hash256 tx_root{};
  Hash256 state_root{};
  sim::SimTime timestamp = 0;
  std::uint32_t proposer = 0;  // consensus replica index

  [[nodiscard]] Bytes encode() const;
  static Expected<BlockHeader> decode(BytesView bytes);
  [[nodiscard]] Hash256 hash() const { return sha256(BytesView(encode())); }

  friend bool operator==(const BlockHeader&, const BlockHeader&) = default;
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> txs;

  /// Merkle root over transaction ids.
  [[nodiscard]] Hash256 compute_tx_root() const;

  [[nodiscard]] Bytes encode() const;
  static Expected<Block> decode(BytesView bytes);
  [[nodiscard]] Hash256 hash() const { return header.hash(); }

  friend bool operator==(const Block&, const Block&) = default;
};

}  // namespace tnp::ledger
