// Gas metering: every contract step and state access charges a deterministic
// cost, so "scalable smart contract execution" (paper Sec VII) is measurable
// rather than rhetorical. Costs are in abstract gas units; bench E10 reports
// gas/second throughput.
#pragma once

#include <cstdint>

#include "common/expected.hpp"

namespace tnp::ledger {

/// Canonical gas prices (loosely EVM-proportioned).
struct GasCosts {
  std::uint64_t base_tx = 500;        // flat per transaction
  std::uint64_t vm_op = 1;            // per VM instruction
  std::uint64_t state_read = 20;      // per KV read
  std::uint64_t state_write = 100;    // per KV write
  std::uint64_t state_byte = 1;       // per byte written
  std::uint64_t hash_per_block = 30;  // per 64-byte SHA-256 block
  std::uint64_t sig_verify = 3000;    // per signature verification
  std::uint64_t event_emit = 50;      // per emitted event
};

class GasMeter {
 public:
  explicit GasMeter(std::uint64_t limit) : limit_(limit) {}

  /// Charges `amount`; fails (and pins the meter at the limit) on overrun.
  Status charge(std::uint64_t amount) {
    if (used_ + amount > limit_) {
      used_ = limit_;
      return Status(ErrorCode::kResourceExhausted, "out of gas");
    }
    used_ += amount;
    return Status::Ok();
  }

  [[nodiscard]] std::uint64_t used() const { return used_; }
  [[nodiscard]] std::uint64_t limit() const { return limit_; }
  [[nodiscard]] std::uint64_t remaining() const { return limit_ - used_; }

 private:
  std::uint64_t limit_;
  std::uint64_t used_ = 0;
};

}  // namespace tnp::ledger
