#include "ledger/transaction.hpp"

namespace tnp::ledger {

Bytes Transaction::encode(bool include_signature) const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(scheme));
  w.bytes(BytesView(sender_material));
  w.u64(nonce);
  w.str(contract);
  w.str(method);
  w.bytes(BytesView(args));
  w.u64(gas_limit);
  if (include_signature) w.bytes(BytesView(signature));
  return w.take();
}

Expected<Transaction> Transaction::decode(BytesView bytes) {
  ByteReader r(bytes);
  Transaction tx;
  auto scheme = r.u8();
  if (!scheme) return scheme.error();
  if (*scheme > static_cast<std::uint8_t>(SigScheme::kHmacSim)) {
    return Error(ErrorCode::kCorruptData, "unknown signature scheme");
  }
  tx.scheme = static_cast<SigScheme>(*scheme);
  auto material = r.bytes();
  if (!material) return material.error();
  tx.sender_material = std::move(*material);
  auto nonce = r.u64();
  if (!nonce) return nonce.error();
  tx.nonce = *nonce;
  auto contract = r.str();
  if (!contract) return contract.error();
  tx.contract = std::move(*contract);
  auto method = r.str();
  if (!method) return method.error();
  tx.method = std::move(*method);
  auto args = r.bytes();
  if (!args) return args.error();
  tx.args = std::move(*args);
  auto gas = r.u64();
  if (!gas) return gas.error();
  tx.gas_limit = *gas;
  auto sig = r.bytes();
  if (!sig) return sig.error();
  tx.signature = std::move(*sig);
  if (!r.done()) {
    return Error(ErrorCode::kCorruptData, "trailing bytes after transaction");
  }
  return tx;
}

void Transaction::sign_with(const KeyPair& key) {
  scheme = key.scheme();
  sender_material = key.public_material();
  signature = key.sign(BytesView(encode(false)));
}

bool Transaction::verify_signature() const {
  return tnp::verify_signature(scheme, BytesView(sender_material),
                               BytesView(encode(false)), BytesView(signature));
}

}  // namespace tnp::ledger
