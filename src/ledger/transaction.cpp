#include "ledger/transaction.hpp"

#include <algorithm>

namespace tnp::ledger {

std::uint64_t short_tx_id_mask(std::uint8_t width) {
  const std::uint8_t w = std::clamp<std::uint8_t>(width, 1, 8);
  if (w == 8) return ~std::uint64_t{0};
  return (std::uint64_t{1} << (8 * w)) - 1;
}

std::uint64_t short_tx_id(const Hash256& id, std::uint8_t width) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | id.bytes[static_cast<std::size_t>(i)];
  }
  return v & short_tx_id_mask(width);
}

Bytes Transaction::encode(bool include_signature) const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(scheme));
  w.bytes(BytesView(sender_material));
  w.u64(nonce);
  w.str(contract);
  w.str(method);
  w.bytes(BytesView(args));
  w.u64(gas_limit);
  if (include_signature) w.bytes(BytesView(signature));
  return w.take();
}

Expected<Transaction> Transaction::decode(BytesView bytes) {
  ByteReader r(bytes);
  Transaction tx;
  auto scheme = r.u8();
  if (!scheme) return scheme.error();
  if (*scheme > static_cast<std::uint8_t>(SigScheme::kHmacSim)) {
    return Error(ErrorCode::kCorruptData, "unknown signature scheme");
  }
  tx.scheme = static_cast<SigScheme>(*scheme);
  auto material = r.bytes();
  if (!material) return material.error();
  tx.sender_material = std::move(*material);
  auto nonce = r.u64();
  if (!nonce) return nonce.error();
  tx.nonce = *nonce;
  auto contract = r.str();
  if (!contract) return contract.error();
  tx.contract = std::move(*contract);
  auto method = r.str();
  if (!method) return method.error();
  tx.method = std::move(*method);
  auto args = r.bytes();
  if (!args) return args.error();
  tx.args = std::move(*args);
  auto gas = r.u64();
  if (!gas) return gas.error();
  tx.gas_limit = *gas;
  auto sig = r.bytes();
  if (!sig) return sig.error();
  tx.signature = std::move(*sig);
  if (!r.done()) {
    return Error(ErrorCode::kCorruptData, "trailing bytes after transaction");
  }
  return tx;
}

Transaction& Transaction::operator=(const Transaction& o) {
  scheme = o.scheme;
  sender_material = o.sender_material;
  nonce = o.nonce;
  contract = o.contract;
  method = o.method;
  args = o.args;
  gas_limit = o.gas_limit;
  signature = o.signature;
  id_cached_ = false;  // the copy is what callers mutate; force a re-hash
  return *this;
}

Hash256 Transaction::id() const {
  if (!id_cached_) {
    id_cache_ = sha256(BytesView(encode(true)));
    id_cached_ = true;
  }
  return id_cache_;
}

void Transaction::sign_with(const KeyPair& key) {
  scheme = key.scheme();
  sender_material = key.public_material();
  signature = key.sign(BytesView(encode(false)));
  id_cached_ = false;
}

bool Transaction::verify_signature() const {
  return tnp::verify_signature(scheme, BytesView(sender_material),
                               BytesView(encode(false)), BytesView(signature));
}

}  // namespace tnp::ledger
