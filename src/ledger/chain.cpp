#include "ledger/chain.hpp"

#include <numeric>

#include "common/log.hpp"
#include "common/parallel.hpp"
#include "crypto/schnorr.hpp"
#include "obs/trace.hpp"

namespace tnp::ledger {

namespace {

/// Nonce wire format shared by the serial and speculative read paths.
std::uint64_t decode_nonce(const Bytes* raw) {
  if (raw == nullptr) return 0;
  ByteReader r{BytesView(*raw)};
  return r.u64().value_or(0);
}

/// Verifies the signatures of txs[begin, end), writing per-index verdicts.
/// Schnorr transactions in the range are checked with one algebraic batch
/// verification; if the batch rejects (or a key/signature fails to parse),
/// the affected transactions fall back to individual verification, so the
/// verdict vector is identical to a per-signature scan. `skip[i]` marks
/// transactions already known valid (verified-signature cache hits).
void verify_tx_range(const std::vector<Transaction>& txs, std::size_t begin,
                     std::size_t end, const std::vector<unsigned char>& skip,
                     std::vector<unsigned char>& verdicts) {
  std::vector<std::size_t> batch_index;
  std::vector<schnorr::PublicKey> keys;
  std::vector<Bytes> preimages;
  std::vector<schnorr::Signature> sigs;
  for (std::size_t i = begin; i < end; ++i) {
    if (skip[i]) {
      verdicts[i] = 1;
      continue;
    }
    const Transaction& tx = txs[i];
    if (tx.scheme != SigScheme::kSchnorr) {
      verdicts[i] = tx.verify_signature() ? 1 : 0;
      continue;
    }
    auto key = schnorr::PublicKey::deserialize(BytesView(tx.sender_material));
    auto sig = schnorr::Signature::deserialize(BytesView(tx.signature));
    if (!key.ok() || !sig.ok()) {
      verdicts[i] = 0;
      continue;
    }
    batch_index.push_back(i);
    keys.push_back(std::move(*key));
    preimages.push_back(tx.encode(false));
    sigs.push_back(std::move(*sig));
  }
  if (batch_index.empty()) return;
  std::vector<BytesView> messages;
  messages.reserve(preimages.size());
  for (const Bytes& m : preimages) messages.emplace_back(m);
  if (schnorr::batch_verify(keys, messages, sigs)) {
    for (const std::size_t i : batch_index) verdicts[i] = 1;
    return;
  }
  // Batch rejected: at least one bad signature. Re-verify individually so
  // every index gets its exact serial verdict.
  for (std::size_t j = 0; j < batch_index.size(); ++j) {
    verdicts[batch_index[j]] =
        schnorr::verify(keys[j], messages[j], sigs[j]) ? 1 : 0;
  }
}

}  // namespace

Blockchain::Blockchain(TransactionExecutor& executor, ChainConfig config)
    : executor_(executor),
      config_(config),
      sig_cache_(config.sig_cache_capacity) {
  // Genesis: empty block at height 0 committing to the empty state.
  Block genesis;
  genesis.header.height = 0;
  genesis.header.state_root = state_.root();
  genesis.header.tx_root = genesis.compute_tx_root();
  blocks_.push_back(std::move(genesis));
  results_.emplace_back();
}

std::string Blockchain::nonce_key(const AccountId& account) {
  return "sys/nonce/" + account.hex();
}

std::uint64_t Blockchain::expected_nonce(const AccountId& account) const {
  return decode_nonce(state_.get_ptr(nonce_key(account)));
}

Status Blockchain::precheck(const Transaction& tx) const {
  if (config_.verify_signatures) {
    const Hash256 id = tx.id();
    if (!sig_cache_.contains(id)) {
      if (!tx.verify_signature()) {
        return Status(ErrorCode::kUnauthenticated, "bad transaction signature");
      }
      // Remember the admission-time verdict so block commit skips the EC
      // math for this exact signed payload.
      sig_cache_.insert(id);
    }
  }
  if (tx.nonce < expected_nonce(tx.sender())) {
    return Status(ErrorCode::kFailedPrecondition, "stale nonce");
  }
  return Status::Ok();
}

Block Blockchain::make_block(std::vector<Transaction> txs,
                             std::uint32_t proposer,
                             sim::SimTime timestamp) const {
  Block block;
  block.header.height = height() + 1;
  block.header.parent = tip_hash();
  block.header.state_root = state_.root();  // pre-state convention
  block.header.timestamp = timestamp;
  block.header.proposer = proposer;
  block.txs = std::move(txs);
  block.header.tx_root = block.compute_tx_root();
  return block;
}

Status Blockchain::validate_header(const Block& block) const {
  if (block.header.height != height() + 1) {
    return Status(ErrorCode::kFailedPrecondition, "wrong block height");
  }
  if (block.header.parent != tip_hash()) {
    return Status(ErrorCode::kFailedPrecondition, "parent hash mismatch");
  }
  if (block.header.tx_root != block.compute_tx_root()) {
    return Status(ErrorCode::kCorruptData, "tx root mismatch");
  }
  if (block.header.state_root != state_.root()) {
    return Status(ErrorCode::kCorruptData,
                  "pre-state root mismatch (replica divergence)");
  }
  return Status::Ok();
}

std::vector<unsigned char> Blockchain::verify_signatures_parallel(
    const Block& block) const {
  std::vector<unsigned char> verdicts;
  if (!config_.verify_signatures) return verdicts;
  const std::size_t n = block.txs.size();
  verdicts.resize(n);
  // Serial pre-pass: memoized ids + cache lookups, so the parallel phase
  // touches neither the id cache nor the sig-cache mutex.
  std::vector<unsigned char> cached(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    cached[i] = sig_cache_.contains(block.txs[i].id()) ? 1 : 0;
  }
  // Each pool thread takes a contiguous sub-batch and verifies its Schnorr
  // signatures with one multi-scalar multiplication — the thread-level and
  // algebraic batching multiply. 4 is a low floor because a single Schnorr
  // verify already dwarfs the dispatch cost.
  global_pool().for_chunks(
      n, /*min_per_chunk=*/4, [&](std::size_t begin, std::size_t end) {
        verify_tx_range(block.txs, begin, end, cached, verdicts);
      });
  for (std::size_t i = 0; i < n; ++i) {
    if (!cached[i] && verdicts[i]) sig_cache_.insert(block.txs[i].id());
  }
  return verdicts;
}

Status Blockchain::validate_block(const Block& block) const {
  if (auto s = validate_header(block); !s.ok()) return s;
  const auto verdicts = verify_signatures_parallel(block);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (!verdicts[i]) {
      return Status(ErrorCode::kUnauthenticated,
                    "bad signature on tx " + std::to_string(i));
    }
  }
  return Status::Ok();
}

Receipt Blockchain::execute_tx(const Transaction& tx,
                               std::vector<Event>& events,
                               const unsigned char* sig_verdict,
                               std::vector<StateWrite>* write_log) {
  Receipt receipt;
  receipt.tx_id = tx.id();
  GasMeter gas(tx.gas_limit);

  auto fail = [&](const Status& status) {
    receipt.success = false;
    receipt.error = status.error().to_string();
    receipt.gas_used = gas.used();
    return receipt;
  };

  if (auto s = gas.charge(config_.gas_costs.base_tx); !s.ok()) return fail(s);

  const AccountId sender = tx.sender();
  if (config_.verify_signatures) {
    if (auto s = gas.charge(config_.gas_costs.sig_verify); !s.ok()) {
      return fail(s);
    }
    const bool sig_ok = sig_verdict ? *sig_verdict != 0 : tx.verify_signature();
    if (!sig_ok) {
      return fail(Status(ErrorCode::kUnauthenticated, "bad signature"));
    }
  }

  const std::uint64_t expected = expected_nonce(sender);
  if (tx.nonce != expected) {
    return fail(Status(ErrorCode::kFailedPrecondition,
                       "nonce " + std::to_string(tx.nonce) + " != expected " +
                           std::to_string(expected)));
  }
  // Nonce advances regardless of execution outcome (replay protection).
  {
    ByteWriter w;
    w.u64(expected + 1);
    Bytes encoded = w.take();
    if (write_log) write_log->emplace_back(nonce_key(sender), encoded);
    state_.set(nonce_key(sender), std::move(encoded));
  }

  OverlayState overlay(state_);
  std::vector<Event> tx_events;
  ExecContext ctx{
      .block_height = height() + 1,
      .block_time = 0,  // filled by apply_block
      .sender = sender,
      .tx_id = receipt.tx_id,
      .gas = &gas,
      .events = &tx_events,
      .costs = &config_.gas_costs,
  };
  ctx.block_time = pending_block_time_;

  const Status status = executor_.execute(tx, overlay, ctx);
  receipt.gas_used = gas.used();
  if (status.ok()) {
    if (write_log) {
      // Manual application in the WriteSet's sorted order — exactly what
      // commit() does — with each op mirrored into the log.
      for (auto& [key, value] : overlay.take_writes()) {
        if (value.has_value()) {
          write_log->emplace_back(key, *value);
          state_.set(key, std::move(*value));
        } else {
          write_log->emplace_back(key, std::nullopt);
          state_.erase(key);
        }
      }
    } else {
      overlay.commit();
    }
    receipt.success = true;
    for (auto& ev : tx_events) events.push_back(std::move(ev));
  } else {
    overlay.rollback();
    receipt.success = false;
    receipt.error = status.error().to_string();
  }
  return receipt;
}

Blockchain::SpecResult Blockchain::speculate_tx(
    const Block& block, std::size_t index, const MultiVersionState& mv,
    const unsigned char* sig_verdict) const {
  const Transaction& tx = block.txs[index];
  SpecResult out;
  Receipt& receipt = out.receipt;
  receipt.tx_id = tx.id();
  GasMeter gas(tx.gas_limit);

  // All reads flow through the instrumented view (recording versions for
  // validation); all writes buffer in the outer overlay until harvested.
  SpeculativeStateView view(mv, index);
  OverlayState tx_state(static_cast<const StateReader&>(view));

  auto fail = [&](const Status& status) {
    receipt.success = false;
    receipt.error = status.error().to_string();
    receipt.gas_used = gas.used();
  };

  // Mirrors execute_tx decision-for-decision; any divergence here breaks
  // the bit-identical guarantee the equivalence tests enforce.
  [&] {
    if (auto s = gas.charge(config_.gas_costs.base_tx); !s.ok()) {
      return fail(s);
    }
    const AccountId sender = tx.sender();
    if (config_.verify_signatures) {
      if (auto s = gas.charge(config_.gas_costs.sig_verify); !s.ok()) {
        return fail(s);
      }
      const bool sig_ok =
          sig_verdict ? *sig_verdict != 0 : tx.verify_signature();
      if (!sig_ok) {
        return fail(Status(ErrorCode::kUnauthenticated, "bad signature"));
      }
    }

    const std::uint64_t expected =
        decode_nonce(tx_state.get_ptr(nonce_key(sender)));
    if (tx.nonce != expected) {
      return fail(Status(ErrorCode::kFailedPrecondition,
                         "nonce " + std::to_string(tx.nonce) + " != expected " +
                             std::to_string(expected)));
    }
    // Nonce advances regardless of execution outcome (replay protection):
    // written to the outer overlay, so it survives a contract rollback —
    // the speculative analogue of the serial path's direct state_ write.
    {
      ByteWriter w;
      w.u64(expected + 1);
      tx_state.set(nonce_key(sender), w.take());
    }

    OverlayState scratch(tx_state);
    std::vector<Event> tx_events;
    ExecContext ctx{
        .block_height = height() + 1,
        .block_time = block.header.timestamp,
        .sender = sender,
        .tx_id = receipt.tx_id,
        .gas = &gas,
        .events = &tx_events,
        .costs = &config_.gas_costs,
    };
    const Status status = executor_.execute(tx, scratch, ctx);
    receipt.gas_used = gas.used();
    if (status.ok()) {
      scratch.commit();  // flushes into tx_state
      receipt.success = true;
      out.events = std::move(tx_events);
    } else {
      scratch.rollback();
      receipt.success = false;
      receipt.error = status.error().to_string();
    }
  }();

  out.writes = tx_state.take_writes();
  out.reads = view.take_reads();  // kept even on failure: a failed tx's
                                  // decision may rest on stale reads
  return out;
}

void Blockchain::apply_txs_parallel(
    const Block& block, const std::vector<unsigned char>& sig_verdicts,
    BlockResult& result, std::vector<StateWrite>* write_log) {
  const std::size_t n = block.txs.size();
  MultiVersionState mv(state_, n);
  std::vector<SpecResult> rec(n);
  std::vector<unsigned char> final_tx(n, 0);  // validated; never re-runs
  std::vector<std::size_t> wave(n);
  std::iota(wave.begin(), wave.end(), std::size_t{0});

  std::uint64_t speculated = 0, waves = 0, aborted = 0;
  while (!wave.empty()) {
    ++waves;
    speculated += wave.size();
    parallel_for_indices(wave, [&](std::size_t i) {
      SpecResult r = speculate_tx(
          block, i, mv, sig_verdicts.empty() ? nullptr : &sig_verdicts[i]);
      mv.publish(i, r.writes);
      rec[i] = std::move(r);
    });
    // In-order validation: tx i is final once every read still resolves to
    // the version it observed AND that version's writer is itself final —
    // a matching version from a non-final writer may be a doomed
    // speculation about to republish. Validating in index order means a
    // writer validated earlier in this same pass already counts, and the
    // lowest pending tx (whose reads can only hit final writers) always
    // finalizes, so the loop runs at most n waves.
    std::vector<std::size_t> next;
    for (std::size_t i = 0; i < n; ++i) {
      if (final_tx[i]) continue;
      bool valid = true;
      for (const auto& [key, seen] : rec[i].reads) {
        if (seen.version.writer != ReadVersion::kBase &&
            !final_tx[static_cast<std::size_t>(seen.version.writer)]) {
          valid = false;
          break;
        }
        if (!(mv.current_version(key, i) == seen.version)) {
          valid = false;
          break;
        }
      }
      if (valid) {
        final_tx[i] = 1;
      } else {
        next.push_back(i);
      }
    }
    aborted += next.size();
    wave = std::move(next);
  }
  ++exec_stats_.parallel_blocks;
  exec_stats_.waves += waves;
  exec_stats_.speculated += speculated;
  exec_stats_.aborted += aborted;
  exec_stats_.reexecuted += speculated - n;
  // Recorded from this serial coordinator, never from workers: one wave
  // summary (and one abort summary, aborted == reexecuted by construction)
  // per parallel block.
  if (config_.trace) {
    config_.trace->record(obs::TraceEventType::kSpecWave,
                          config_.trace_replica, block.header.height, 0, waves,
                          speculated);
    if (aborted > 0) {
      config_.trace->record(obs::TraceEventType::kSpecAbort,
                            config_.trace_replica, block.header.height, 0,
                            aborted, speculated - n);
    }
  }

  // Serial commit in tx order: the exact writes the serial loop would
  // make, applied in the same order — state root, receipts, events, and
  // gas totals are bit-identical to serial execution.
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& [key, value] : rec[i].writes) {
      if (write_log) write_log->emplace_back(key, value);
      if (value.has_value()) {
        state_.set(key, std::move(*value));
      } else {
        state_.erase(key);
      }
    }
    Receipt& receipt = rec[i].receipt;
    total_gas_used_ += receipt.gas_used;
    if (!receipt.success) {
      log_debug("tx ", receipt.tx_id.short_hex(), " failed: ", receipt.error);
    }
    for (auto& ev : rec[i].events) result.events.push_back(std::move(ev));
    result.receipts.push_back(std::move(receipt));
  }
}

ChainCheckpoint Blockchain::checkpoint() const {
  ChainCheckpoint cp;
  cp.height = height();
  cp.tip_hash = tip_hash();
  cp.state = state_;
  cp.total_gas_used = total_gas_used_;
  cp.tx_count = tx_count_;
  cp.results = results_;
  return cp;
}

Expected<std::uint64_t> Blockchain::restore(const std::vector<Block>& blocks,
                                            const ChainCheckpoint* cp) {
  if (height() != 0 || total_gas_used_ != 0 || tx_count_ != 0) {
    return Error(ErrorCode::kFailedPrecondition,
                 "restore requires a fresh chain");
  }
  // Pass 1: structural verification, truncating at the first bad link.
  // Header hashes chain each block to its parent; recomputing the tx root
  // additionally binds the transaction *bodies*, which the header chain
  // alone does not cover (a flipped tx byte leaves every header intact).
  std::uint64_t valid = 0;
  Hash256 prev = blocks_.front().hash();  // genesis
  for (const Block& b : blocks) {
    if (b.header.height != valid + 1) break;
    if (b.header.parent != prev) break;
    if (b.header.tx_root != b.compute_tx_root()) break;
    prev = b.hash();
    ++valid;
  }

  std::uint64_t start = 0;  // first height to re-execute is start + 1
  if (cp && cp->height > 0) {
    if (cp->height > valid) {
      return Error(ErrorCode::kFailedPrecondition,
                   "checkpoint height beyond verifiable blocks");
    }
    if (blocks[cp->height - 1].hash() != cp->tip_hash) {
      return Error(ErrorCode::kCorruptData, "checkpoint tip-hash mismatch");
    }
    if (cp->results.size() != cp->height + 1) {
      return Error(ErrorCode::kCorruptData,
                   "checkpoint results/height mismatch");
    }
    state_ = cp->state;
    total_gas_used_ = cp->total_gas_used;
    tx_count_ = cp->tx_count;
    results_ = cp->results;
    blocks_.insert(blocks_.end(), blocks.begin(),
                   blocks.begin() + static_cast<std::ptrdiff_t>(cp->height));
    start = cp->height;
  }
  for (std::uint64_t h = start; h < valid; ++h) {
    if (!apply_block(blocks[h]).ok()) break;  // keep the verified prefix
  }
  return height();
}

Status Blockchain::apply_block(const Block& block) {
  if (auto s = validate_header(block); !s.ok()) return s;

  // Phase 1 (parallel): verify every signature up front. Phase 2 (serial):
  // apply transactions in order, consuming the per-index verdicts — gas
  // accounting and receipt contents match the serial path exactly.
  const auto sig_verdicts = verify_signatures_parallel(block);

  BlockResult result;
  result.receipts.reserve(block.txs.size());
  pending_block_time_ = block.header.timestamp;
  // Committed-write collection only runs for subscribed chains; the write
  // stream feeds delta-maintained derived views (news analytics, factdb
  // mirror) so they never re-scan world state.
  std::vector<StateWrite> writes;
  std::vector<StateWrite>* write_log =
      commit_hooks_.empty() ? nullptr : &writes;
  const bool speculative = config_.parallel_execution &&
                           block.txs.size() >= config_.parallel_min_txs &&
                           global_pool().width() > 1;
  if (speculative) {
    apply_txs_parallel(block, sig_verdicts, result, write_log);
  } else {
    ++exec_stats_.serial_blocks;
    for (std::size_t i = 0; i < block.txs.size(); ++i) {
      const auto& tx = block.txs[i];
      Receipt receipt = execute_tx(
          tx, result.events, sig_verdicts.empty() ? nullptr : &sig_verdicts[i],
          write_log);
      total_gas_used_ += receipt.gas_used;
      if (!receipt.success) {
        log_debug("tx ", receipt.tx_id.short_hex(), " failed: ", receipt.error);
      }
      result.receipts.push_back(std::move(receipt));
    }
  }
  tx_count_ += block.txs.size();
  blocks_.push_back(block);
  results_.push_back(std::move(result));
  if (!commit_hooks_.empty()) {
    const CommittedBlockInfo info{blocks_.back(), results_.back(), writes};
    for (const auto& hook : commit_hooks_) hook(info);
  }
  return Status::Ok();
}

}  // namespace tnp::ledger
