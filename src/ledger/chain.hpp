// The blockchain: ordered, validated blocks applied to world state.
//
// Follows the execute-after-order model (as PBFT/Tendermint do): consensus
// fixes the transaction order first, execution happens at apply time, and a
// header's state_root commits to the state *after the parent block* — so
// replicas detect divergence one block later without executing before
// voting.
//
// Failed transactions consume their nonce and gas but leave no state
// effects (per-transaction overlay rollback).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <utility>
#include <vector>

#include "ledger/block.hpp"
#include "ledger/gas.hpp"
#include "ledger/state.hpp"

namespace tnp::obs {
class TraceRecorder;
}

namespace tnp::ledger {

/// Event emitted by contract execution; recorded in the receipt so
/// off-chain components (newsroom UIs, monitors) can react.
struct Event {
  std::string name;
  Bytes data;
};

/// Context handed to contract execution.
struct ExecContext {
  std::uint64_t block_height = 0;
  sim::SimTime block_time = 0;
  AccountId sender{};
  Hash256 tx_id{};
  GasMeter* gas = nullptr;
  std::vector<Event>* events = nullptr;
  const GasCosts* costs = nullptr;

  Status charge(std::uint64_t amount) const { return gas->charge(amount); }
  void emit(std::string name, Bytes data) const {
    if (events) events->push_back(Event{std::move(name), std::move(data)});
  }
};

/// Pluggable execution engine (implemented by contracts::ContractHost).
class TransactionExecutor {
 public:
  virtual ~TransactionExecutor() = default;
  virtual Status execute(const Transaction& tx, OverlayState& state,
                         ExecContext& ctx) = 0;
};

struct BlockResult {
  std::vector<Receipt> receipts;
  std::vector<Event> events;  // all events, in tx order
};

/// One committed state mutation: key plus the new value (nullopt = erase).
using StateWrite = std::pair<std::string, std::optional<Bytes>>;

/// Payload handed to commit hooks after a block is fully applied. `writes`
/// lists every state mutation the block made (nonce bumps included), in
/// application order — exactly what a subscriber needs to delta-maintain a
/// derived view without re-scanning world state. Borrowed references: valid
/// only for the duration of the hook call.
struct CommittedBlockInfo {
  const Block& block;
  const BlockResult& result;
  const std::vector<StateWrite>& writes;
};

/// Counters from the execution engine, cumulative across applied blocks.
/// Observability only — never part of committed state, receipts, or chaos
/// fingerprints: abort/re-execution counts depend on thread scheduling and
/// are not deterministic run to run (unlike every committed artifact,
/// which is bit-identical to serial execution by construction).
struct ExecStats {
  std::uint64_t serial_blocks = 0;    // blocks run on the serial baseline path
  std::uint64_t parallel_blocks = 0;  // blocks run through the speculative engine
  std::uint64_t speculated = 0;       // speculative tx executions (incl. re-runs)
  std::uint64_t aborted = 0;          // read-set validation failures
  std::uint64_t reexecuted = 0;       // executions beyond the first, per tx
  std::uint64_t waves = 0;            // scheduling waves across parallel blocks

  ExecStats& operator+=(const ExecStats& o) {
    serial_blocks += o.serial_blocks;
    parallel_blocks += o.parallel_blocks;
    speculated += o.speculated;
    aborted += o.aborted;
    reexecuted += o.reexecuted;
    waves += o.waves;
    return *this;
  }
};

/// Everything derived state a chain holds at a height: the inputs to
/// Blockchain::restore() and the payload of a storage-layer snapshot. A
/// checkpoint is *derived* data — blocks re-executed from genesis produce
/// an identical one — so persisting it is purely a recovery-time
/// optimization, never a source of truth.
struct ChainCheckpoint {
  std::uint64_t height = 0;
  Hash256 tip_hash{};             // hash of the block at `height`
  WorldState state;               // world state after block `height`
  std::uint64_t total_gas_used = 0;
  std::uint64_t tx_count = 0;
  std::vector<BlockResult> results;  // results[h] for h in [0, height]
};

struct ChainConfig {
  GasCosts gas_costs{};
  bool verify_signatures = true;  // disable to isolate consensus cost (E8)
  /// Bound on the verified-signature cache (0 disables it). Transactions
  /// whose signatures already checked out at mempool admission (precheck)
  /// are not re-verified at block commit.
  std::size_t sig_cache_capacity = 1 << 16;
  /// Optimistic parallel execution (Block-STM family): execute block
  /// transactions speculatively on the global thread pool against a
  /// multi-version overlay, validate read sets in transaction order,
  /// re-execute conflicters, then commit serially in block order. Results
  /// — state root, receipts, events, gas — are bit-identical to the serial
  /// path, which remains the fallback when the pool width is 1
  /// (TNP_THREADS=1) or the block is below parallel_min_txs.
  bool parallel_execution = true;
  /// Smallest block worth speculating on; below this the serial loop wins.
  std::size_t parallel_min_txs = 4;
  /// Optional structured-event sink (src/obs; not owned, must outlive the
  /// chain). The parallel engine records per-block speculation wave/abort
  /// events tagged with `trace_replica`. Diagnostic lane: like ExecStats,
  /// the operands depend on thread scheduling and are excluded from trace
  /// fingerprints.
  obs::TraceRecorder* trace = nullptr;
  std::uint32_t trace_replica = 0;
};

/// Bounded FIFO set of transaction ids whose signatures have verified.
/// Thread-safe; the ledger consults it serially around the parallel verify
/// phase, the mutex only guards against concurrent prechecks.
class VerifiedSigCache {
 public:
  explicit VerifiedSigCache(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool contains(const Hash256& id) const {
    std::lock_guard lock(mu_);
    return set_.contains(id);
  }
  void insert(const Hash256& id) {
    if (capacity_ == 0) return;
    std::lock_guard lock(mu_);
    if (!set_.insert(id).second) return;
    order_.push_back(id);
    while (order_.size() > capacity_) {
      set_.erase(order_.front());
      order_.pop_front();
    }
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return set_.size();
  }

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::unordered_set<Hash256> set_;
  std::deque<Hash256> order_;
};

class Blockchain {
 public:
  Blockchain(TransactionExecutor& executor, ChainConfig config = {});

  /// State key holding an account's next nonce.
  static std::string nonce_key(const AccountId& account);

  /// Next expected nonce for `account` (0 if never seen).
  [[nodiscard]] std::uint64_t expected_nonce(const AccountId& account) const;

  /// Stateless-ish precheck used by the mempool: signature + nonce >=
  /// expected (future nonces are allowed to queue).
  [[nodiscard]] Status precheck(const Transaction& tx) const;

  /// Builds a candidate block on the current tip. Does not execute.
  [[nodiscard]] Block make_block(std::vector<Transaction> txs,
                                 std::uint32_t proposer,
                                 sim::SimTime timestamp) const;

  /// Header-level validation of a candidate block against the current tip
  /// (no execution) — what a replica checks before voting.
  [[nodiscard]] Status check_candidate(const Block& block) const {
    return validate_header(block);
  }

  /// Full block validation without execution: the header checks plus a
  /// signature check of every transaction, verified in parallel on the
  /// global pool. Per-index verdicts are collected so the reported error
  /// names the lowest failing transaction index — identical to what a
  /// serial front-to-back scan would report.
  [[nodiscard]] Status validate_block(const Block& block) const;

  /// Full validation + execution + append. Transaction signatures are
  /// verified in parallel up front; the serial state-apply pass then
  /// consumes the per-index verdicts, so receipts (order, gas, error
  /// strings) are bit-identical to the all-serial path. On any
  /// header-level failure the chain is untouched. Individual failed
  /// transactions are recorded in their receipts.
  Status apply_block(const Block& block);

  [[nodiscard]] std::uint64_t height() const {
    return blocks_.empty() ? 0 : blocks_.back().header.height;
  }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] Hash256 tip_hash() const {
    return blocks_.empty() ? Hash256{} : blocks_.back().hash();
  }
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }
  [[nodiscard]] const Block& block_at(std::uint64_t height) const {
    return blocks_.at(height);
  }
  [[nodiscard]] const BlockResult& result_at(std::uint64_t height) const {
    return results_.at(height);
  }

  [[nodiscard]] const WorldState& state() const { return state_; }
  /// Mutable access for genesis seeding only (before block 1 is applied).
  [[nodiscard]] WorldState& mutable_state_for_genesis() { return state_; }

  /// Snapshot of all derived state at the current height (storage layer).
  [[nodiscard]] ChainCheckpoint checkpoint() const;

  /// Rebuilds this chain from persisted blocks (heights 1..n, genesis
  /// excluded) and an optional checkpoint. Only callable on a fresh chain
  /// (height 0; genesis seeding may already have been applied).
  ///
  /// The blocks are first verified as a chain — sequential heights, parent
  /// hash links, recomputed tx roots — and silently truncated at the first
  /// violation (recovery's exact-prefix rule). With a checkpoint, state/
  /// results/counters are restored at cp.height (after cross-checking
  /// cp.tip_hash against the block at that height) and only later blocks
  /// are re-executed; without one, every block re-executes from genesis.
  /// Re-execution runs the full validate+apply path, so a block whose
  /// recorded pre-state root does not match the rebuilt state stops the
  /// restore there — the chain keeps the verified prefix.
  ///
  /// Returns the restored height. Errors (checkpoint beyond the verifiable
  /// blocks, tip-hash mismatch, malformed results vector, non-fresh chain)
  /// leave the chain untouched so the caller can retry without the
  /// checkpoint.
  Expected<std::uint64_t> restore(const std::vector<Block>& blocks,
                                  const ChainCheckpoint* cp = nullptr);

  /// Subscribes to block commits. Hooks run serially, in registration
  /// order, after the block's state effects are fully applied (including
  /// during restore()'s re-execution, so a subscriber rebuilt over a
  /// recovered chain replays the same stream). Write collection is gated on
  /// at least one hook being registered — hook-free chains pay nothing.
  /// Hooks must not call back into the chain.
  using CommitHook = std::function<void(const CommittedBlockInfo&)>;
  void add_commit_hook(CommitHook hook) {
    commit_hooks_.push_back(std::move(hook));
  }

  [[nodiscard]] std::uint64_t total_gas_used() const { return total_gas_used_; }
  [[nodiscard]] std::uint64_t tx_count() const { return tx_count_; }
  /// Number of transaction ids currently held by the verified-signature
  /// cache (observability / tests).
  [[nodiscard]] std::size_t sig_cache_size() const { return sig_cache_.size(); }
  /// Execution-engine counters (cumulative; see ExecStats for caveats).
  [[nodiscard]] const ExecStats& exec_stats() const { return exec_stats_; }

 private:
  Status validate_header(const Block& block) const;
  /// Verifies all tx signatures on the global pool. Each thread gets a
  /// contiguous sub-batch; Schnorr signatures inside a sub-batch are
  /// checked with one algebraic batch verification (falling back to
  /// per-signature checks when the batch rejects, so verdicts — and the
  /// lowest-failing-index error — match the serial path exactly).
  /// Transactions whose ids are in the verified-signature cache skip
  /// re-verification. Returns one verdict per transaction (empty when
  /// signature checking is disabled).
  std::vector<unsigned char> verify_signatures_parallel(
      const Block& block) const;
  /// `sig_verdict` is the pre-computed signature check for this tx, or
  /// nullptr to verify inline (serial path). When `write_log` is non-null
  /// every state mutation (nonce bump + committed overlay writes, in the
  /// overlay's sorted order — the order commit() applies them) is appended.
  Receipt execute_tx(const Transaction& tx, std::vector<Event>& events,
                     const unsigned char* sig_verdict = nullptr,
                     std::vector<StateWrite>* write_log = nullptr);

  /// One transaction's speculative execution artifacts, harvested for
  /// validation and (if it survives) the serial commit pass.
  struct SpecResult {
    OverlayState::WriteSet writes;
    SpeculativeStateView::ReadSet reads;
    Receipt receipt;
    std::vector<Event> events;
  };
  /// Executes block.txs[index] against the multi-version overlay, reads
  /// instrumented through a SpeculativeStateView. Mirrors execute_tx
  /// decision-for-decision (gas charges, nonce handling, rollback) so a
  /// validated result is bit-identical to what the serial path produces.
  SpecResult speculate_tx(const Block& block, std::size_t index,
                          const MultiVersionState& mv,
                          const unsigned char* sig_verdict) const;
  /// The optimistic engine: wave-parallel speculation, in-order read-set
  /// validation, abort/re-execute, then a serial commit in tx order.
  /// `write_log`, when non-null, receives every committed write from the
  /// serial commit pass (nonce writes ride in the speculative write sets).
  void apply_txs_parallel(const Block& block,
                          const std::vector<unsigned char>& sig_verdicts,
                          BlockResult& result,
                          std::vector<StateWrite>* write_log);

  TransactionExecutor& executor_;
  ChainConfig config_;
  /// Ids of transactions whose signatures verified (at precheck or in a
  /// previous block validation) — performance-only: hits skip the EC math
  /// but verdicts are identical since only valid signatures are inserted.
  mutable VerifiedSigCache sig_cache_;
  WorldState state_;
  std::vector<Block> blocks_;        // blocks_[0] is genesis
  std::vector<BlockResult> results_; // parallel to blocks_
  std::uint64_t total_gas_used_ = 0;
  std::uint64_t tx_count_ = 0;
  ExecStats exec_stats_;
  sim::SimTime pending_block_time_ = 0;  // timestamp of the block being applied
  std::vector<CommitHook> commit_hooks_;
};

}  // namespace tnp::ledger
