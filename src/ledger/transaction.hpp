// Signed transactions. A transaction is a method call on a named contract;
// the sender's verification material travels with the transaction (first
// use doubles as identity registration), so every action on the platform is
// attributable — the traceability/accountability property the paper builds
// its news supply chain on.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "crypto/hash.hpp"
#include "crypto/signer.hpp"

namespace tnp::ledger {

struct Transaction {
  SigScheme scheme = SigScheme::kSchnorr;
  Bytes sender_material;  // pubkey bytes (Schnorr) or sim session key
  std::uint64_t nonce = 0;
  std::string contract;   // target contract name
  std::string method;     // method selector
  Bytes args;             // method-specific encoding
  std::uint64_t gas_limit = 1'000'000;
  Bytes signature;        // over encode(false)

  /// Account the transaction is attributed to.
  [[nodiscard]] AccountId sender() const {
    return derive_account_id(scheme, BytesView(sender_material));
  }

  /// Canonical encoding; `include_signature=false` is the signing preimage.
  [[nodiscard]] Bytes encode(bool include_signature = true) const;
  static Expected<Transaction> decode(BytesView bytes);

  /// Content id (hash of the fully signed encoding).
  [[nodiscard]] Hash256 id() const { return sha256(BytesView(encode(true))); }

  /// Fills scheme/material/signature from `key`. Call after all other
  /// fields are final.
  void sign_with(const KeyPair& key);

  /// Verifies the embedded signature against the embedded material.
  [[nodiscard]] bool verify_signature() const;

  friend bool operator==(const Transaction&, const Transaction&) = default;
};

/// Execution outcome recorded per transaction in a block.
struct Receipt {
  Hash256 tx_id;
  bool success = false;
  std::uint64_t gas_used = 0;
  std::string error;  // empty on success
};

}  // namespace tnp::ledger
