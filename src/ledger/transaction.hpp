// Signed transactions. A transaction is a method call on a named contract;
// the sender's verification material travels with the transaction (first
// use doubles as identity registration), so every action on the platform is
// attributable — the traceability/accountability property the paper builds
// its news supply chain on.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "crypto/hash.hpp"
#include "crypto/signer.hpp"

namespace tnp::ledger {

struct Transaction {
  SigScheme scheme = SigScheme::kSchnorr;
  Bytes sender_material;  // pubkey bytes (Schnorr) or sim session key
  std::uint64_t nonce = 0;
  std::string contract;   // target contract name
  std::string method;     // method selector
  Bytes args;             // method-specific encoding
  std::uint64_t gas_limit = 1'000'000;
  Bytes signature;        // over encode(false)

  /// Account the transaction is attributed to.
  [[nodiscard]] AccountId sender() const {
    return derive_account_id(scheme, BytesView(sender_material));
  }

  /// Canonical encoding; `include_signature=false` is the signing preimage.
  [[nodiscard]] Bytes encode(bool include_signature = true) const;
  static Expected<Transaction> decode(BytesView bytes);

  /// Content id (hash of the fully signed encoding). Memoized: the first
  /// call hashes, later calls return the cached digest — mempool add /
  /// take_batch / remove_committed and Merkle tx-root construction all hit
  /// the same id without re-hashing. Copies drop the cache (a copy is how
  /// tamper/fork scenarios mutate a transaction), moves keep it. Mutating
  /// fields in place after calling id() on the same object is not
  /// supported — copy first or re-sign.
  [[nodiscard]] Hash256 id() const;

  /// Fills scheme/material/signature from `key`. Call after all other
  /// fields are final.
  void sign_with(const KeyPair& key);

  /// Verifies the embedded signature against the embedded material.
  [[nodiscard]] bool verify_signature() const;

  Transaction() = default;
  Transaction(Transaction&&) = default;
  Transaction& operator=(Transaction&&) = default;
  Transaction(const Transaction& o) { *this = o; }
  Transaction& operator=(const Transaction& o);

  friend bool operator==(const Transaction& a, const Transaction& b) {
    return a.scheme == b.scheme && a.sender_material == b.sender_material &&
           a.nonce == b.nonce && a.contract == b.contract &&
           a.method == b.method && a.args == b.args &&
           a.gas_limit == b.gas_limit && a.signature == b.signature;
  }

 private:
  mutable Hash256 id_cache_{};
  mutable bool id_cached_ = false;
};

/// First `width` (1..8) bytes of a transaction id as a little-endian
/// integer — the compact-relay short id. Collisions are expected by
/// construction at small widths; callers must verify reconstructed content
/// against a Merkle root, never trust short ids alone.
[[nodiscard]] std::uint64_t short_tx_id(const Hash256& id, std::uint8_t width);

/// Mask selecting the low `width` (1..8) bytes of a u64.
[[nodiscard]] std::uint64_t short_tx_id_mask(std::uint8_t width);

/// Execution outcome recorded per transaction in a block.
struct Receipt {
  Hash256 tx_id;
  bool success = false;
  std::uint64_t gas_used = 0;
  std::string error;  // empty on success
};

}  // namespace tnp::ledger
