#include "ledger/mempool.hpp"

#include <algorithm>
#include <map>

namespace tnp::ledger {

Status Mempool::add(Transaction tx) {
  if (queue_.size() >= capacity_) {
    return Status(ErrorCode::kResourceExhausted, "mempool full");
  }
  const Hash256 id = tx.id();
  if (!ids_.insert(id).second) {
    return Status(ErrorCode::kAlreadyExists, "duplicate transaction");
  }
  queue_.push_back(std::move(tx));
  return Status::Ok();
}

std::vector<Transaction> Mempool::take_batch(std::size_t max_txs) {
  std::vector<Transaction> batch;
  batch.reserve(std::min(max_txs, queue_.size()));
  // Per-sender nonce ordering within the batch: a sender's transactions are
  // taken only in increasing nonce order; out-of-order ones stay queued.
  std::map<AccountId, std::uint64_t> last_taken;
  std::deque<Transaction> held;
  while (!queue_.empty() && batch.size() < max_txs) {
    Transaction tx = std::move(queue_.front());
    queue_.pop_front();
    const AccountId sender = tx.sender();
    const auto it = last_taken.find(sender);
    if (it != last_taken.end() && tx.nonce != it->second + 1) {
      held.push_back(std::move(tx));
      continue;
    }
    last_taken[sender] = tx.nonce;
    ids_.erase(tx.id());
    batch.push_back(std::move(tx));
  }
  // Put held transactions back at the front, preserving order.
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    queue_.push_front(std::move(*it));
  }
  return batch;
}

std::vector<std::optional<Transaction>> Mempool::reconstruct(
    const std::vector<std::uint64_t>& short_ids, std::uint8_t width) const {
  // First FIFO occurrence wins: deterministic across replicas that hold the
  // same pool, and the cheapest policy when collisions are rare anyway.
  std::unordered_map<std::uint64_t, const Transaction*> by_short_id;
  for (const auto& tx : queue_) {
    by_short_id.try_emplace(short_tx_id(tx.id(), width), &tx);
  }
  std::vector<std::optional<Transaction>> out;
  out.reserve(short_ids.size());
  const std::uint64_t m = short_tx_id_mask(width);
  for (std::uint64_t id : short_ids) {
    const auto it = by_short_id.find(id & m);
    if (it == by_short_id.end()) {
      ++stats_.recon_misses;
      out.emplace_back(std::nullopt);
    } else {
      ++stats_.recon_hits;
      out.emplace_back(*it->second);
    }
  }
  return out;
}

void Mempool::remove_committed(const std::vector<Transaction>& committed) {
  // tx.id() below is memoized on the transaction, so this pass (and the
  // queue scan) costs hash-map lookups, not repeated SHA-256 work.
  std::unordered_set<Hash256> gone;
  for (const auto& tx : committed) {
    const Hash256 id = tx.id();
    if (ids_.erase(id) > 0) gone.insert(id);
  }
  if (gone.empty()) return;
  std::erase_if(queue_, [&](const Transaction& tx) {
    return gone.contains(tx.id());
  });
}

}  // namespace tnp::ledger
