#include "ledger/block.hpp"

namespace tnp::ledger {

Bytes BlockHeader::encode() const {
  ByteWriter w;
  w.u64(height);
  w.raw(parent.view());
  w.raw(tx_root.view());
  w.raw(state_root.view());
  w.u64(timestamp);
  w.u32(proposer);
  return w.take();
}

Expected<BlockHeader> BlockHeader::decode(BytesView bytes) {
  ByteReader r(bytes);
  BlockHeader h;
  auto height = r.u64();
  if (!height) return height.error();
  h.height = *height;
  for (Hash256* target : {&h.parent, &h.tx_root, &h.state_root}) {
    auto raw = r.raw(32);
    if (!raw) return raw.error();
    std::copy(raw->begin(), raw->end(), target->bytes.begin());
  }
  auto ts = r.u64();
  if (!ts) return ts.error();
  h.timestamp = *ts;
  auto proposer = r.u32();
  if (!proposer) return proposer.error();
  h.proposer = *proposer;
  return h;
}

Hash256 Block::compute_tx_root() const {
  std::vector<Hash256> leaves;
  leaves.reserve(txs.size());
  for (const auto& tx : txs) leaves.push_back(tx.id());
  return merkle_root(leaves);
}

Bytes Block::encode() const {
  ByteWriter w;
  w.bytes(BytesView(header.encode()));
  w.u32(static_cast<std::uint32_t>(txs.size()));
  for (const auto& tx : txs) w.bytes(BytesView(tx.encode(true)));
  return w.take();
}

Expected<Block> Block::decode(BytesView bytes) {
  ByteReader r(bytes);
  Block b;
  auto header_bytes = r.bytes();
  if (!header_bytes) return header_bytes.error();
  auto header = BlockHeader::decode(BytesView(*header_bytes));
  if (!header) return header.error();
  b.header = *header;
  auto count = r.u32();
  if (!count) return count.error();
  b.txs.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto tx_bytes = r.bytes();
    if (!tx_bytes) return tx_bytes.error();
    auto tx = Transaction::decode(BytesView(*tx_bytes));
    if (!tx) return tx.error();
    b.txs.push_back(std::move(*tx));
  }
  if (!r.done()) {
    return Error(ErrorCode::kCorruptData, "trailing bytes after block");
  }
  return b;
}

}  // namespace tnp::ledger
