// World state: the key-value store contracts execute against.
//
// The commitment (state root) is an incremental XOR-accumulator of
// sha256(key || 0x1F || value) per live entry — order-independent and O(1)
// to maintain per write. This is weaker than a Merkle-Patricia commitment
// (no compact non-membership proofs, and XOR-malleable in theory) but
// preserves the property the experiments need: any divergence in executed
// state shows up as a root mismatch between replicas. Documented as a
// simulation-grade substitution in DESIGN.md.
//
// OverlayState buffers writes for one transaction so a failed execution
// rolls back atomically.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "crypto/hash.hpp"

namespace tnp::ledger {

/// Read interface shared by WorldState and OverlayState.
class StateReader {
 public:
  virtual ~StateReader() = default;
  [[nodiscard]] virtual std::optional<Bytes> get(std::string_view key) const = 0;
  [[nodiscard]] virtual bool contains(std::string_view key) const {
    return get(key).has_value();
  }
};

class WorldState final : public StateReader {
 public:
  [[nodiscard]] std::optional<Bytes> get(std::string_view key) const override;
  void set(std::string_view key, Bytes value);
  void erase(std::string_view key);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const Hash256& root() const { return root_; }

  /// Iterates entries with the given key prefix, ordered by key.
  /// Visitor: bool(const std::string& key, const Bytes& value) — return
  /// false to stop early.
  template <typename Visitor>
  void scan_prefix(std::string_view prefix, Visitor&& visit) const {
    for (auto it = entries_.lower_bound(std::string(prefix));
         it != entries_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      if (!visit(it->first, it->second)) break;
    }
  }

 private:
  static Hash256 entry_digest(std::string_view key, BytesView value);
  void xor_into_root(const Hash256& digest);

  std::map<std::string, Bytes, std::less<>> entries_;
  Hash256 root_{};
};

/// Copy-on-write view over a base state. Writes and tombstones live in the
/// overlay until commit() flushes them into the base.
class OverlayState final : public StateReader {
 public:
  explicit OverlayState(WorldState& base) : base_(base) {}

  [[nodiscard]] std::optional<Bytes> get(std::string_view key) const override;
  void set(std::string_view key, Bytes value);
  void erase(std::string_view key);

  /// Number of buffered operations (writes + tombstones).
  [[nodiscard]] std::size_t pending() const { return writes_.size(); }

  /// Applies buffered ops to the base state and clears the overlay.
  void commit();
  /// Drops all buffered ops.
  void rollback() { writes_.clear(); }

 private:
  WorldState& base_;
  // nullopt value = tombstone.
  std::map<std::string, std::optional<Bytes>, std::less<>> writes_;
};

}  // namespace tnp::ledger
