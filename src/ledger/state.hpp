// World state: the key-value store contracts execute against.
//
// The commitment (state root) is an incremental XOR-accumulator of
// sha256(key || 0x1F || value) per live entry — order-independent and O(1)
// to maintain per write. This is weaker than a Merkle-Patricia commitment
// (no compact non-membership proofs, and XOR-malleable in theory) but
// preserves the property the experiments need: any divergence in executed
// state shows up as a root mismatch between replicas. Documented as a
// simulation-grade substitution in DESIGN.md.
//
// OverlayState buffers writes for one transaction so a failed execution
// rolls back atomically. MultiVersionState + SpeculativeStateView are the
// block-level multi-version overlay the optimistic parallel execution
// engine (chain.cpp) speculates against: per key, the write of every
// transaction index that touched it, so a reader at index i resolves to
// the highest writer below i and records the version it saw for
// commit-time validation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/hash.hpp"

namespace tnp::ledger {

/// Read interface shared by every state view. The primitive is get_ptr —
/// a borrowed pointer into the store — so hot paths (schema decoders, VM
/// loads, nested overlay walks) avoid copying value bytes. The pointer is
/// valid until the underlying store mutates; callers that outlive the next
/// write copy via get().
class StateReader {
 public:
  virtual ~StateReader() = default;

  /// Pointer to the stored value, or nullptr when the key is absent (or
  /// deleted by an overlay tombstone).
  [[nodiscard]] virtual const Bytes* get_ptr(std::string_view key) const = 0;

  /// Copying convenience wrapper over get_ptr.
  [[nodiscard]] std::optional<Bytes> get(std::string_view key) const {
    const Bytes* value = get_ptr(key);
    if (value == nullptr) return std::nullopt;
    return *value;
  }

  [[nodiscard]] bool contains(std::string_view key) const {
    return get_ptr(key) != nullptr;
  }
};

/// Write interface shared by WorldState and OverlayState so an overlay can
/// commit into either (nested overlays flush into their parent).
class WritableState {
 public:
  virtual ~WritableState() = default;
  virtual void set(std::string_view key, Bytes value) = 0;
  virtual void erase(std::string_view key) = 0;
};

class WorldState final : public StateReader, public WritableState {
 public:
  [[nodiscard]] const Bytes* get_ptr(std::string_view key) const override;
  void set(std::string_view key, Bytes value) override;
  void erase(std::string_view key) override;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const Hash256& root() const { return root_; }

  /// Iterates entries with the given key prefix, ordered by key.
  /// Visitor: bool(const std::string& key, const Bytes& value) — return
  /// false to stop early.
  template <typename Visitor>
  void scan_prefix(std::string_view prefix, Visitor&& visit) const {
    for (auto it = entries_.lower_bound(std::string(prefix));
         it != entries_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      if (!visit(it->first, it->second)) break;
    }
  }

 private:
  static Hash256 entry_digest(std::string_view key, BytesView value);
  void xor_into_root(const Hash256& digest);

  std::map<std::string, Bytes, std::less<>> entries_;
  Hash256 root_{};
};

/// Copy-on-write view over a base state. Writes and tombstones live in the
/// overlay until commit() flushes them into the base (or take_writes()
/// hands them to the caller for deferred application).
///
/// Reads that fall through to the base are memoized, so a chain of nested
/// overlays walks each layer at most once per key; the memo stays valid
/// because the base cannot mutate while the overlay buffers (own writes are
/// consulted before the memo).
class OverlayState final : public StateReader, public WritableState {
 public:
  /// Overlay whose commit() flushes into a world state.
  explicit OverlayState(WorldState& base) : base_(&base), target_(&base) {}
  /// Nested overlay: commit() flushes into the parent overlay. (This
  /// doubles as the copy-constructor slot — overlays are not copyable.)
  explicit OverlayState(OverlayState& parent) : base_(&parent), target_(&parent) {}
  /// Overlay over a read-only view (speculative execution): commit() is
  /// unavailable; the engine harvests buffered ops with take_writes().
  explicit OverlayState(const StateReader& base) : base_(&base) {}

  [[nodiscard]] const Bytes* get_ptr(std::string_view key) const override;
  void set(std::string_view key, Bytes value) override;
  void erase(std::string_view key) override;

  /// Number of buffered operations (writes + tombstones).
  [[nodiscard]] std::size_t pending() const { return writes_.size(); }

  /// nullopt value = tombstone.
  using WriteSet = std::map<std::string, std::optional<Bytes>, std::less<>>;

  /// Applies buffered ops to the writable base and clears the overlay.
  /// Requires a writable base (WorldState or parent overlay).
  void commit();
  /// Drops all buffered ops.
  void rollback() { writes_.clear(); }
  /// Moves the buffered ops out (leaving the overlay empty) without
  /// touching the base — the parallel engine applies them at commit order.
  [[nodiscard]] WriteSet take_writes();

 private:
  const StateReader* base_;
  WritableState* target_ = nullptr;  // null when the base is read-only
  WriteSet writes_;
  // Memoized base fall-throughs (nullptr = base miss). Cleared on commit,
  // since committing mutates the base the cached pointers borrow from.
  mutable std::map<std::string, const Bytes*, std::less<>> read_memo_;
};

/// Version observed by a speculative read: which transaction's write was
/// visible (kBase = the block's pre-state) and that transaction's
/// incarnation (re-execution count) at the time of the read.
struct ReadVersion {
  static constexpr std::int32_t kBase = -1;
  std::int32_t writer = kBase;
  std::uint32_t incarnation = 0;
  friend bool operator==(const ReadVersion&, const ReadVersion&) = default;
};

/// Block-level multi-version overlay for optimistic parallel execution.
/// Per key it holds the write (value or tombstone) of every transaction
/// index that published one, so a reader at index i resolves to the
/// highest writer strictly below i, falling back to the pre-block world
/// state. Thread-safe: reads take a shared lock, publishes an exclusive
/// one. Values are shared_ptr-owned so a reader can pin what it observed
/// while a concurrent re-execution republishes the same slot.
class MultiVersionState {
 public:
  MultiVersionState(const WorldState& base, std::size_t tx_count)
      : base_(base), written_(tx_count), incarnation_(tx_count, 0) {}

  struct Resolved {
    const Bytes* value = nullptr;      // nullptr = absent or deleted
    std::shared_ptr<const Bytes> pin;  // keeps overlay-owned values alive
    ReadVersion version{};
  };

  /// Value visible to transaction `reader` right now.
  [[nodiscard]] Resolved read(std::string_view key, std::size_t reader) const;

  /// Version transaction `reader` would observe for `key` right now —
  /// validation compares this against the ReadVersion recorded at
  /// execution time.
  [[nodiscard]] ReadVersion current_version(std::string_view key,
                                            std::size_t reader) const;

  /// Replaces transaction `writer`'s write set (bumping its incarnation):
  /// keys from the previous publish that the re-execution no longer
  /// writes are removed.
  void publish(std::size_t writer, const OverlayState::WriteSet& writes);

 private:
  struct Write {
    std::shared_ptr<const Bytes> value;  // null = tombstone
    std::uint32_t incarnation = 0;
  };

  const WorldState& base_;
  mutable std::shared_mutex mu_;
  // key -> (writer tx index -> write)
  std::map<std::string, std::map<std::size_t, Write>, std::less<>> table_;
  std::vector<std::vector<std::string>> written_;  // per tx: last published keys
  std::vector<std::uint32_t> incarnation_;
};

/// Instrumented reader for one speculative transaction execution. Every
/// resolved read is memoized and recorded with the version it observed, so
/// (a) commit-time validation can replay the read set against the final
/// overlay, and (b) re-reading a key mid-execution stays stable even while
/// other transactions republish underneath.
class SpeculativeStateView final : public StateReader {
 public:
  SpeculativeStateView(const MultiVersionState& mv, std::size_t reader)
      : mv_(mv), reader_(reader) {}

  [[nodiscard]] const Bytes* get_ptr(std::string_view key) const override {
    auto it = reads_.find(key);
    if (it == reads_.end()) {
      it = reads_.emplace(std::string(key), mv_.read(key, reader_)).first;
    }
    return it->second.value;
  }

  /// Read set: key -> the resolved value/version observed first.
  using ReadSet = std::map<std::string, MultiVersionState::Resolved, std::less<>>;
  [[nodiscard]] const ReadSet& reads() const { return reads_; }
  [[nodiscard]] ReadSet take_reads() { return std::move(reads_); }

 private:
  const MultiVersionState& mv_;
  std::size_t reader_;
  mutable ReadSet reads_;
};

}  // namespace tnp::ledger
