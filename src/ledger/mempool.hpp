// Mempool: FIFO pending-transaction pool with content-hash dedup and
// per-account nonce ordering so blocks drain transactions in executable
// order.
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "ledger/transaction.hpp"

namespace tnp::ledger {

class Mempool {
 public:
  /// Compact-relay reconstruction counters (see reconstruct()).
  struct Stats {
    std::uint64_t recon_hits = 0;    // short ids resolved from the pool
    std::uint64_t recon_misses = 0;  // short ids with no pool match
    std::uint64_t fallbacks = 0;     // reconstructions abandoned for a full block
  };

  explicit Mempool(std::size_t capacity = 100'000) : capacity_(capacity) {}

  /// Adds a transaction. Rejects duplicates and overflow.
  Status add(Transaction tx);

  /// Pops up to `max_txs` transactions in arrival order, but holding back
  /// any transaction whose sender already has an earlier pending nonce in
  /// this batch gap (keeps batches executable).
  [[nodiscard]] std::vector<Transaction> take_batch(std::size_t max_txs);

  /// Drops any pending transactions whose ids appear in `committed`
  /// (called after a block commits).
  void remove_committed(const std::vector<Transaction>& committed);

  /// Compact-relay reconstruction: resolves each short id (low `width`
  /// bytes of a tx id, see short_tx_id) against the pool, returning the
  /// first FIFO match per id or nullopt for a miss. Pool contents are
  /// untouched — the caller only learns which txs it can supply; a
  /// colliding short id can resolve to the wrong transaction, which the
  /// caller's tx-root cross-check must catch. Updates recon_hits/misses.
  [[nodiscard]] std::vector<std::optional<Transaction>> reconstruct(
      const std::vector<std::uint64_t>& short_ids, std::uint8_t width) const;

  /// Records a reconstruction abandoned for a full-block fetch
  /// (short-id collision or corrupt rebuild caught by the tx-root check).
  void note_fallback() { ++stats_.fallbacks; }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] bool contains(const Hash256& id) const {
    return ids_.contains(id);
  }

 private:
  std::size_t capacity_;
  std::deque<Transaction> queue_;
  std::unordered_set<Hash256> ids_;
  mutable Stats stats_;  // reconstruct() is read-only on the pool itself
};

}  // namespace tnp::ledger
