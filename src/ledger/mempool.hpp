// Mempool: FIFO pending-transaction pool with content-hash dedup and
// per-account nonce ordering so blocks drain transactions in executable
// order.
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "ledger/transaction.hpp"

namespace tnp::ledger {

class Mempool {
 public:
  explicit Mempool(std::size_t capacity = 100'000) : capacity_(capacity) {}

  /// Adds a transaction. Rejects duplicates and overflow.
  Status add(Transaction tx);

  /// Pops up to `max_txs` transactions in arrival order, but holding back
  /// any transaction whose sender already has an earlier pending nonce in
  /// this batch gap (keeps batches executable).
  [[nodiscard]] std::vector<Transaction> take_batch(std::size_t max_txs);

  /// Drops any pending transactions whose ids appear in `committed`
  /// (called after a block commits).
  void remove_committed(const std::vector<Transaction>& committed);

  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] bool contains(const Hash256& id) const {
    return ids_.contains(id);
  }

 private:
  std::size_t capacity_;
  std::deque<Transaction> queue_;
  std::unordered_set<Hash256> ids_;
};

}  // namespace tnp::ledger
