#include "ledger/state.hpp"

#include <mutex>

namespace tnp::ledger {

Hash256 WorldState::entry_digest(std::string_view key, BytesView value) {
  Sha256 h;
  h.update(key);
  const std::uint8_t sep = 0x1F;
  h.update(BytesView(&sep, 1));
  h.update(value);
  return h.finalize();
}

void WorldState::xor_into_root(const Hash256& digest) {
  for (std::size_t i = 0; i < root_.bytes.size(); ++i) {
    root_.bytes[i] ^= digest.bytes[i];
  }
}

const Bytes* WorldState::get_ptr(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  return &it->second;
}

void WorldState::set(std::string_view key, Bytes value) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    xor_into_root(entry_digest(key, BytesView(it->second)));  // remove old
    it->second = std::move(value);
  } else {
    it = entries_.emplace(std::string(key), std::move(value)).first;
  }
  xor_into_root(entry_digest(key, BytesView(it->second)));
}

void WorldState::erase(std::string_view key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  xor_into_root(entry_digest(key, BytesView(it->second)));
  entries_.erase(it);
}

const Bytes* OverlayState::get_ptr(std::string_view key) const {
  const auto it = writes_.find(key);
  if (it != writes_.end()) {
    // Map nodes are stable, so pointers into the buffered write survive
    // later set/erase calls (until commit/rollback/take_writes).
    return it->second.has_value() ? &*it->second : nullptr;
  }
  const auto memo = read_memo_.find(key);
  if (memo != read_memo_.end()) return memo->second;
  const Bytes* value = base_->get_ptr(key);
  read_memo_.emplace(std::string(key), value);
  return value;
}

void OverlayState::set(std::string_view key, Bytes value) {
  writes_[std::string(key)] = std::move(value);
}

void OverlayState::erase(std::string_view key) {
  writes_[std::string(key)] = std::nullopt;
}

void OverlayState::commit() {
  for (auto& [key, value] : writes_) {
    if (value.has_value()) {
      target_->set(key, std::move(*value));
    } else {
      target_->erase(key);
    }
  }
  writes_.clear();
  read_memo_.clear();  // base just mutated; cached pointers are stale
}

OverlayState::WriteSet OverlayState::take_writes() {
  WriteSet out = std::move(writes_);
  writes_.clear();
  return out;
}

MultiVersionState::Resolved MultiVersionState::read(std::string_view key,
                                                    std::size_t reader) const {
  {
    std::shared_lock lock(mu_);
    const auto it = table_.find(key);
    if (it != table_.end()) {
      const auto& versions = it->second;
      auto v = versions.lower_bound(reader);
      if (v != versions.begin()) {
        --v;  // highest writer strictly below the reader
        Resolved out;
        out.pin = v->second.value;
        out.value = out.pin.get();  // null pin = tombstone = absent
        out.version = {static_cast<std::int32_t>(v->first),
                       v->second.incarnation};
        return out;
      }
    }
  }
  // Pre-block state: immutable while the block executes, so the borrowed
  // pointer needs no pin and no lock.
  Resolved out;
  out.value = base_.get_ptr(key);
  return out;
}

ReadVersion MultiVersionState::current_version(std::string_view key,
                                               std::size_t reader) const {
  std::shared_lock lock(mu_);
  const auto it = table_.find(key);
  if (it != table_.end()) {
    const auto& versions = it->second;
    auto v = versions.lower_bound(reader);
    if (v != versions.begin()) {
      --v;
      return {static_cast<std::int32_t>(v->first), v->second.incarnation};
    }
  }
  return {};  // resolves to base
}

void MultiVersionState::publish(std::size_t writer,
                                const OverlayState::WriteSet& writes) {
  std::unique_lock lock(mu_);
  const std::uint32_t incarnation = ++incarnation_[writer];
  // Drop keys the previous incarnation wrote but this one does not.
  for (const auto& key : written_[writer]) {
    if (writes.find(key) != writes.end()) continue;
    const auto it = table_.find(key);
    if (it == table_.end()) continue;
    it->second.erase(writer);
    if (it->second.empty()) table_.erase(it);
  }
  auto& recorded = written_[writer];
  recorded.clear();
  recorded.reserve(writes.size());
  for (const auto& [key, value] : writes) {
    recorded.push_back(key);
    Write w;
    w.incarnation = incarnation;
    if (value.has_value()) w.value = std::make_shared<const Bytes>(*value);
    table_[key][writer] = std::move(w);
  }
}

}  // namespace tnp::ledger
