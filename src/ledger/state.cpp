#include "ledger/state.hpp"

namespace tnp::ledger {

Hash256 WorldState::entry_digest(std::string_view key, BytesView value) {
  Sha256 h;
  h.update(key);
  const std::uint8_t sep = 0x1F;
  h.update(BytesView(&sep, 1));
  h.update(value);
  return h.finalize();
}

void WorldState::xor_into_root(const Hash256& digest) {
  for (std::size_t i = 0; i < root_.bytes.size(); ++i) {
    root_.bytes[i] ^= digest.bytes[i];
  }
}

std::optional<Bytes> WorldState::get(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void WorldState::set(std::string_view key, Bytes value) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    xor_into_root(entry_digest(key, BytesView(it->second)));  // remove old
    it->second = std::move(value);
  } else {
    it = entries_.emplace(std::string(key), std::move(value)).first;
  }
  xor_into_root(entry_digest(key, BytesView(it->second)));
}

void WorldState::erase(std::string_view key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  xor_into_root(entry_digest(key, BytesView(it->second)));
  entries_.erase(it);
}

std::optional<Bytes> OverlayState::get(std::string_view key) const {
  const auto it = writes_.find(key);
  if (it != writes_.end()) return it->second;  // nullopt == deleted
  return base_.get(key);
}

void OverlayState::set(std::string_view key, Bytes value) {
  writes_[std::string(key)] = std::move(value);
}

void OverlayState::erase(std::string_view key) {
  writes_[std::string(key)] = std::nullopt;
}

void OverlayState::commit() {
  for (auto& [key, value] : writes_) {
    if (value.has_value()) {
      base_.set(key, std::move(*value));
    } else {
      base_.erase(key);
    }
  }
  writes_.clear();
}

}  // namespace tnp::ledger
