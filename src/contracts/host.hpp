// Contract framework: the Contract interface, the ContractHost that
// dispatches ledger transactions to contracts, and the standard registry
// wiring all built-in platform contracts (paper Secs IV–VI as chaincode).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "ledger/chain.hpp"

namespace tnp::contracts {

/// One named smart contract. `call` runs inside a transaction: state writes
/// go to the overlay (rolled back if the call fails) and every resource use
/// must be charged to ctx.gas.
///
/// Concurrency contract: the optimistic parallel execution engine
/// (ledger/chain.cpp) may run `call` for different transactions on
/// different threads at once, each against its own overlay. Contracts must
/// therefore be stateless — all state through the overlay, no mutable
/// members, no globals — and deterministic: outputs, gas charges, and
/// events are functions of (tx, reads, ctx) only, so a re-execution after
/// a conflict abort replays identically. Every built-in satisfies both.
class Contract {
 public:
  virtual ~Contract() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual Status call(const std::string& method, ByteReader& args,
                      ledger::OverlayState& state,
                      ledger::ExecContext& ctx) = 0;
};

/// TransactionExecutor that routes tx.contract/tx.method to a registry of
/// contracts.
class ContractHost final : public ledger::TransactionExecutor {
 public:
  void add(std::unique_ptr<Contract> contract);
  [[nodiscard]] bool has(const std::string& name) const {
    return contracts_.contains(name);
  }

  Status execute(const ledger::Transaction& tx, ledger::OverlayState& state,
                 ledger::ExecContext& ctx) override;

  /// All built-in contracts: identity, token, news, ranking, factdb,
  /// governance, vm.
  static std::unique_ptr<ContractHost> standard();

 private:
  std::map<std::string, std::unique_ptr<Contract>> contracts_;
};

// Factories for the individual built-ins (implemented in native.cpp).
std::unique_ptr<Contract> make_identity_contract();
std::unique_ptr<Contract> make_token_contract();
std::unique_ptr<Contract> make_news_contract();
std::unique_ptr<Contract> make_ranking_contract();
std::unique_ptr<Contract> make_factdb_contract();
std::unique_ptr<Contract> make_governance_contract();
std::unique_ptr<Contract> make_detector_registry_contract();
std::unique_ptr<Contract> make_vm_contract();

}  // namespace tnp::contracts
