// On-ledger state schema shared by the native contracts and the off-chain
// core layer (which reads committed WorldState to build the news
// supply-chain graph). All keys are ASCII paths; all records use ByteWriter
// encoding. Centralizing the schema here keeps contracts and readers in
// lockstep.
#pragma once

#include <optional>
#include <string>

#include "crypto/signer.hpp"
#include "ledger/state.hpp"

namespace tnp::contracts {

/// Platform roles (paper Fig. 2 ecosystem actors).
enum class Role : std::uint8_t {
  kConsumer = 0,
  kJournalist = 1,
  kFactChecker = 2,
  kPublisher = 3,
  kDeveloper = 4,
};

/// News derivation operations (paper Sec VI: relay, insert, mix, split,
/// merge; kOriginal marks a root article).
enum class EditType : std::uint8_t {
  kOriginal = 0,
  kRelay = 1,
  kInsert = 2,
  kMix = 3,
  kSplit = 4,
  kMerge = 5,
};

[[nodiscard]] constexpr std::string_view to_string(EditType e) {
  switch (e) {
    case EditType::kOriginal: return "original";
    case EditType::kRelay: return "relay";
    case EditType::kInsert: return "insert";
    case EditType::kMix: return "mix";
    case EditType::kSplit: return "split";
    case EditType::kMerge: return "merge";
  }
  return "?";
}

struct Profile {
  std::string display_name;
  Role role = Role::kConsumer;
  bool verified = false;   // identity endorsed by governance
  double reputation = 1.0; // crowd-sourcing weight, updated by ranking

  [[nodiscard]] Bytes encode() const {
    ByteWriter w;
    w.str(display_name);
    w.u8(static_cast<std::uint8_t>(role));
    w.u8(verified ? 1 : 0);
    w.f64(reputation);
    return w.take();
  }
  static std::optional<Profile> decode(BytesView bytes) {
    ByteReader r(bytes);
    Profile p;
    auto name = r.str();
    auto role = r.u8();
    auto verified = r.u8();
    auto rep = r.f64();
    if (!name || !role || !verified || !rep) return std::nullopt;
    p.display_name = std::move(*name);
    p.role = static_cast<Role>(*role);
    p.verified = *verified != 0;
    p.reputation = *rep;
    return p;
  }
};

/// One article in the on-chain news supply chain (paper Fig. 4 node).
struct ArticleRecord {
  AccountId author{};
  std::string platform;
  std::string room;
  std::string content_ref;  // off-chain content pointer (digest string)
  EditType edit_type = EditType::kOriginal;
  std::uint64_t published_at = 0;  // block time
  std::uint64_t block_height = 0;
  std::vector<Hash256> parents;

  [[nodiscard]] Bytes encode() const {
    ByteWriter w;
    w.raw(author.view());
    w.str(platform);
    w.str(room);
    w.str(content_ref);
    w.u8(static_cast<std::uint8_t>(edit_type));
    w.u64(published_at);
    w.u64(block_height);
    w.u32(static_cast<std::uint32_t>(parents.size()));
    for (const auto& p : parents) w.raw(p.view());
    return w.take();
  }
  static std::optional<ArticleRecord> decode(BytesView bytes) {
    ByteReader r(bytes);
    ArticleRecord a;
    auto author = r.raw(32);
    if (!author) return std::nullopt;
    std::copy(author->begin(), author->end(), a.author.bytes.begin());
    auto platform = r.str();
    auto room = r.str();
    auto ref = r.str();
    auto edit = r.u8();
    auto at = r.u64();
    auto height = r.u64();
    auto count = r.u32();
    if (!platform || !room || !ref || !edit || !at || !height || !count) {
      return std::nullopt;
    }
    a.platform = std::move(*platform);
    a.room = std::move(*room);
    a.content_ref = std::move(*ref);
    a.edit_type = static_cast<EditType>(*edit);
    a.published_at = *at;
    a.block_height = *height;
    a.parents.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto parent = r.raw(32);
      if (!parent) return std::nullopt;
      Hash256 h;
      std::copy(parent->begin(), parent->end(), h.bytes.begin());
      a.parents.push_back(h);
    }
    return a;
  }
};

/// One crowd vote on an article's factualness.
/// A detector registered in the Sec V "app-store": developer-owned VM code
/// whose track record against settled ranking outcomes sets its weight.
struct DetectorRecord {
  AccountId developer{};
  Hash256 vm_address{};
  std::string display_name;
  bool active = true;

  [[nodiscard]] Bytes encode() const {
    ByteWriter w;
    w.raw(developer.view());
    w.raw(vm_address.view());
    w.str(display_name);
    w.u8(active ? 1 : 0);
    return w.take();
  }
  static std::optional<DetectorRecord> decode(BytesView bytes) {
    ByteReader r(bytes);
    DetectorRecord d;
    auto dev = r.raw(32);
    auto addr = r.raw(32);
    if (!dev || !addr) return std::nullopt;
    std::copy(dev->begin(), dev->end(), d.developer.bytes.begin());
    std::copy(addr->begin(), addr->end(), d.vm_address.bytes.begin());
    auto name = r.str();
    auto active = r.u8();
    if (!name || !active) return std::nullopt;
    d.display_name = std::move(*name);
    d.active = *active != 0;
    return d;
  }
};

struct VoteRecord {
  AccountId voter{};
  bool says_factual = false;
  std::uint64_t stake = 0;
  double reputation_at_vote = 1.0;

  [[nodiscard]] Bytes encode() const {
    ByteWriter w;
    w.raw(voter.view());
    w.u8(says_factual ? 1 : 0);
    w.u64(stake);
    w.f64(reputation_at_vote);
    return w.take();
  }
  static std::optional<VoteRecord> decode(BytesView bytes) {
    ByteReader r(bytes);
    VoteRecord v;
    auto voter = r.raw(32);
    if (!voter) return std::nullopt;
    std::copy(voter->begin(), voter->end(), v.voter.bytes.begin());
    auto verdict = r.u8();
    auto stake = r.u64();
    auto rep = r.f64();
    if (!verdict || !stake || !rep) return std::nullopt;
    v.says_factual = *verdict != 0;
    v.stake = *stake;
    v.reputation_at_vote = *rep;
    return v;
  }
};

// ------------------------------------------------------------ state keys

namespace keys {

inline std::string profile(const AccountId& a) { return "id/profile/" + a.hex(); }
inline std::string token_balance(const AccountId& a) { return "token/bal/" + a.hex(); }
inline const char* token_supply() { return "token/supply"; }

inline std::string platform(const std::string& name) { return "news/platform/" + name; }
inline std::string room(const std::string& platform, const std::string& room) {
  return "news/room/" + platform + "/" + room;
}
inline std::string journalist_auth(const std::string& platform, const AccountId& a) {
  return "news/auth/" + platform + "/" + a.hex();
}
inline std::string article(const Hash256& h) { return "news/article/" + h.hex(); }
inline constexpr std::string_view article_prefix() { return "news/article/"; }
inline std::string comment(const Hash256& article, std::uint64_t index) {
  return "news/comment/" + article.hex() + "/" + std::to_string(index);
}
inline std::string comment_count(const Hash256& article) {
  return "news/comment_count/" + article.hex();
}

inline std::string rank_round(const Hash256& article) { return "rank/round/" + article.hex(); }
inline std::string rank_vote(const Hash256& article, std::uint64_t index) {
  return "rank/vote/" + article.hex() + "/" + std::to_string(index);
}
inline std::string rank_voted_marker(const Hash256& article, const AccountId& a) {
  return "rank/voted/" + article.hex() + "/" + a.hex();
}
inline std::string rank_score(const Hash256& article) { return "rank/score/" + article.hex(); }

inline std::string factdb_record(const Hash256& h) { return "factdb/rec/" + h.hex(); }
inline constexpr std::string_view factdb_prefix() { return "factdb/rec/"; }

inline const char* gov_admin() { return "gov/admin"; }
inline std::string gov_endorsed(const AccountId& a) { return "gov/endorsed/" + a.hex(); }
inline std::string gov_flags(const AccountId& a) { return "gov/flags/" + a.hex(); }
inline std::string gov_param(const std::string& name) { return "gov/param/" + name; }

// Detector registry (the Sec V "app-store" of fake-news-detection tools).
inline std::string detector(const std::string& name) {
  return "detreg/detector/" + name;
}
inline constexpr std::string_view detector_prefix() { return "detreg/detector/"; }
inline std::string detector_weight(const std::string& name) {
  return "detreg/weight/" + name;
}
inline std::string detector_stats(const std::string& name) {
  return "detreg/stats/" + name;  // (total u64, agreed u64)
}

inline std::string vm_code(const Hash256& address) { return "vm/code/" + address.hex(); }
inline std::string vm_data(const Hash256& address, const std::string& key_hex) {
  return "vm/data/" + address.hex() + "/" + key_hex;
}

}  // namespace keys

// -------------------------------------------------------- value helpers

// Decoders borrow the stored bytes via StateReader::get_ptr — no value
// copy on the read path (overlay reads memoize the base walk, so repeated
// reads of one key are a single map probe).

inline std::uint64_t get_u64(const ledger::StateReader& state,
                             std::string_view key, std::uint64_t fallback = 0) {
  const Bytes* raw = state.get_ptr(key);
  if (!raw) return fallback;
  ByteReader r{BytesView(*raw)};
  return r.u64().value_or(fallback);
}

template <typename State>
void set_u64(State& state, std::string_view key, std::uint64_t value) {
  ByteWriter w;
  w.u64(value);
  state.set(key, w.take());
}

inline double get_f64(const ledger::StateReader& state, std::string_view key,
                      double fallback = 0.0) {
  const Bytes* raw = state.get_ptr(key);
  if (!raw) return fallback;
  ByteReader r{BytesView(*raw)};
  return r.f64().value_or(fallback);
}

template <typename State>
void set_f64(State& state, std::string_view key, double value) {
  ByteWriter w;
  w.f64(value);
  state.set(key, w.take());
}

inline std::optional<AccountId> get_account(const ledger::StateReader& state,
                                            std::string_view key) {
  const Bytes* raw = state.get_ptr(key);
  if (!raw || raw->size() != 32) return std::nullopt;
  AccountId id;
  std::copy(raw->begin(), raw->end(), id.bytes.begin());
  return id;
}

template <typename State>
void set_account(State& state, std::string_view key, const AccountId& id) {
  state.set(key, Bytes(id.bytes.begin(), id.bytes.end()));
}

inline std::optional<Profile> get_profile(const ledger::StateReader& state,
                                          const AccountId& account) {
  const Bytes* raw = state.get_ptr(keys::profile(account));
  if (!raw) return std::nullopt;
  return Profile::decode(BytesView(*raw));
}

}  // namespace tnp::contracts
