#include "contracts/vm.hpp"

#include <cstring>
#include <map>
#include <sstream>

#include "crypto/hash.hpp"

namespace tnp::contracts {

namespace {

Error trap(const std::string& what) {
  return Error(ErrorCode::kFailedPrecondition, "vm trap: " + what);
}

Bytes int_bytes(std::uint64_t v) {
  ByteWriter w;
  w.u64(v);
  return w.take();
}

Expected<std::uint64_t> as_int(const Bytes& v) {
  if (v.size() != 8) return trap("operand is not a u64");
  std::uint64_t out;
  std::memcpy(&out, v.data(), 8);
  return out;
}

bool truthy(const Bytes& v) {
  for (std::uint8_t b : v) {
    if (b != 0) return true;
  }
  return false;
}

}  // namespace

Expected<VmResult> vm_execute(BytesView code, BytesView input, VmEnv& env,
                              ledger::GasMeter& gas,
                              const ledger::GasCosts& costs,
                              std::uint64_t max_steps) {
  std::vector<Bytes> stack;
  std::size_t pc = 0;
  VmResult result;

  auto pop = [&]() -> Expected<Bytes> {
    if (stack.empty()) return trap("stack underflow");
    Bytes v = std::move(stack.back());
    stack.pop_back();
    return v;
  };
  auto read_u8 = [&]() -> Expected<std::uint8_t> {
    if (pc + 1 > code.size()) return trap("truncated immediate");
    return code[pc++];
  };
  auto read_u32 = [&]() -> Expected<std::uint32_t> {
    if (pc + 4 > code.size()) return trap("truncated immediate");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(code[pc++]) << (8 * i);
    return v;
  };
  auto read_u64 = [&]() -> Expected<std::uint64_t> {
    if (pc + 8 > code.size()) return trap("truncated immediate");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(code[pc++]) << (8 * i);
    return v;
  };

  while (pc < code.size()) {
    if (result.steps++ >= max_steps) return trap("step limit exceeded");
    if (auto s = gas.charge(costs.vm_op); !s.ok()) return s.error();
    const Op op = static_cast<Op>(code[pc++]);
    switch (op) {
      case Op::kHalt: {
        if (!stack.empty()) result.output = std::move(stack.back());
        return result;
      }
      case Op::kPush: {
        auto len = read_u32();
        if (!len) return len.error();
        if (pc + *len > code.size()) return trap("truncated push");
        stack.emplace_back(code.begin() + static_cast<std::ptrdiff_t>(pc),
                           code.begin() + static_cast<std::ptrdiff_t>(pc + *len));
        pc += *len;
        break;
      }
      case Op::kPushInt: {
        auto v = read_u64();
        if (!v) return v.error();
        stack.push_back(int_bytes(*v));
        break;
      }
      case Op::kPop: {
        auto v = pop();
        if (!v) return v.error();
        break;
      }
      case Op::kDup: {
        auto depth = read_u8();
        if (!depth) return depth.error();
        if (*depth >= stack.size()) return trap("dup beyond stack");
        stack.push_back(stack[stack.size() - 1 - *depth]);
        break;
      }
      case Op::kSwap: {
        if (stack.size() < 2) return trap("stack underflow");
        std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
        break;
      }
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kLt:
      case Op::kGt:
      case Op::kAnd:
      case Op::kOr: {
        auto b = pop();
        if (!b) return b.error();
        auto a = pop();
        if (!a) return a.error();
        auto ai = as_int(*a);
        if (!ai) return ai.error();
        auto bi = as_int(*b);
        if (!bi) return bi.error();
        std::uint64_t r = 0;
        switch (op) {
          case Op::kAdd: r = *ai + *bi; break;
          case Op::kSub: r = *ai - *bi; break;
          case Op::kMul: r = *ai * *bi; break;
          case Op::kDiv:
            if (*bi == 0) return trap("division by zero");
            r = *ai / *bi;
            break;
          case Op::kMod:
            if (*bi == 0) return trap("modulo by zero");
            r = *ai % *bi;
            break;
          case Op::kLt: r = *ai < *bi ? 1 : 0; break;
          case Op::kGt: r = *ai > *bi ? 1 : 0; break;
          case Op::kAnd: r = (*ai != 0 && *bi != 0) ? 1 : 0; break;
          case Op::kOr: r = (*ai != 0 || *bi != 0) ? 1 : 0; break;
          default: break;
        }
        stack.push_back(int_bytes(r));
        break;
      }
      case Op::kEq: {
        auto b = pop();
        if (!b) return b.error();
        auto a = pop();
        if (!a) return a.error();
        stack.push_back(int_bytes(*a == *b ? 1 : 0));
        break;
      }
      case Op::kNot: {
        auto a = pop();
        if (!a) return a.error();
        stack.push_back(int_bytes(truthy(*a) ? 0 : 1));
        break;
      }
      case Op::kJmp: {
        auto target = read_u32();
        if (!target) return target.error();
        if (*target > code.size()) return trap("jump out of range");
        pc = *target;
        break;
      }
      case Op::kJz: {
        auto target = read_u32();
        if (!target) return target.error();
        auto cond = pop();
        if (!cond) return cond.error();
        if (!truthy(*cond)) {
          if (*target > code.size()) return trap("jump out of range");
          pc = *target;
        }
        break;
      }
      case Op::kConcat: {
        auto b = pop();
        if (!b) return b.error();
        auto a = pop();
        if (!a) return a.error();
        a->insert(a->end(), b->begin(), b->end());
        stack.push_back(std::move(*a));
        break;
      }
      case Op::kLen: {
        auto a = pop();
        if (!a) return a.error();
        stack.push_back(int_bytes(a->size()));
        break;
      }
      case Op::kByteAt: {
        auto index = pop();
        if (!index) return index.error();
        auto value = pop();
        if (!value) return value.error();
        auto idx = as_int(*index);
        if (!idx) return idx.error();
        if (*idx >= value->size()) return trap("byte index out of range");
        stack.push_back(int_bytes((*value)[*idx]));
        break;
      }
      case Op::kSha256: {
        auto a = pop();
        if (!a) return a.error();
        if (auto s = gas.charge(costs.hash_per_block * (1 + a->size() / 64));
            !s.ok()) {
          return s.error();
        }
        const Hash256 h = sha256(BytesView(*a));
        stack.emplace_back(h.bytes.begin(), h.bytes.end());
        break;
      }
      case Op::kLoad: {
        auto key = pop();
        if (!key) return key.error();
        if (auto s = gas.charge(costs.state_read); !s.ok()) return s.error();
        stack.push_back(env.load(*key));
        break;
      }
      case Op::kStore: {
        auto value = pop();
        if (!value) return value.error();
        auto key = pop();
        if (!key) return key.error();
        if (auto s = gas.charge(costs.state_write +
                                costs.state_byte * value->size());
            !s.ok()) {
          return s.error();
        }
        env.store(*key, *value);
        break;
      }
      case Op::kCaller: {
        stack.push_back(env.caller());
        break;
      }
      case Op::kInput: {
        stack.emplace_back(input.begin(), input.end());
        break;
      }
      case Op::kEmit: {
        auto data = pop();
        if (!data) return data.error();
        auto name = pop();
        if (!name) return name.error();
        if (auto s = gas.charge(costs.event_emit); !s.ok()) return s.error();
        env.emit(to_string(BytesView(*name)), *data);
        break;
      }
      default:
        return trap("unknown opcode " + std::to_string(code[pc - 1]));
    }
  }
  // Fell off the end: implicit halt.
  if (!stack.empty()) result.output = std::move(stack.back());
  return result;
}

// ------------------------------------------------------------- assembler

Expected<Bytes> vm_assemble(std::string_view source) {
  struct Fixup {
    std::size_t offset;  // where the u32 target goes
    std::string label;
    std::size_t line;
  };
  static const std::map<std::string, Op, std::less<>> kMnemonics = {
      {"HALT", Op::kHalt},     {"POP", Op::kPop},       {"SWAP", Op::kSwap},
      {"ADD", Op::kAdd},       {"SUB", Op::kSub},       {"MUL", Op::kMul},
      {"DIV", Op::kDiv},       {"MOD", Op::kMod},       {"LT", Op::kLt},
      {"GT", Op::kGt},         {"EQ", Op::kEq},         {"NOT", Op::kNot},
      {"AND", Op::kAnd},       {"OR", Op::kOr},         {"CONCAT", Op::kConcat},
      {"LEN", Op::kLen},       {"SHA256", Op::kSha256}, {"BYTEAT", Op::kByteAt},
      {"LOAD", Op::kLoad},
      {"STORE", Op::kStore},   {"CALLER", Op::kCaller}, {"INPUT", Op::kInput},
      {"EMIT", Op::kEmit},
  };

  Bytes code;
  std::map<std::string, std::uint32_t> labels;
  std::vector<Fixup> fixups;

  auto emit_u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) code.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  auto emit_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) code.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };

  std::istringstream in{std::string(source)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash_pos = line.find('#'); hash_pos != std::string::npos) {
      line.erase(hash_pos);
    }
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank line

    if (word.back() == ':') {
      const std::string label = word.substr(0, word.size() - 1);
      if (!labels.emplace(label, static_cast<std::uint32_t>(code.size())).second) {
        return Error(ErrorCode::kInvalidArgument,
                     "duplicate label '" + label + "'");
      }
      if (ls >> word) {
        return Error(ErrorCode::kInvalidArgument,
                     "label must be alone on its line");
      }
      continue;
    }

    std::string arg;
    const bool has_arg = static_cast<bool>(ls >> arg);
    auto need_arg = [&]() -> Status {
      if (!has_arg) {
        return Status(ErrorCode::kInvalidArgument,
                      word + " needs an argument (line " +
                          std::to_string(line_no) + ")");
      }
      return Status::Ok();
    };

    if (word == "PUSHI") {
      if (auto s = need_arg(); !s.ok()) return s.error();
      code.push_back(static_cast<std::uint8_t>(Op::kPushInt));
      emit_u64(std::stoull(arg));
    } else if (word == "PUSH") {
      if (auto s = need_arg(); !s.ok()) return s.error();
      auto raw = from_hex(arg);
      if (!raw) return raw.error();
      code.push_back(static_cast<std::uint8_t>(Op::kPush));
      emit_u32(static_cast<std::uint32_t>(raw->size()));
      code.insert(code.end(), raw->begin(), raw->end());
    } else if (word == "PUSHS") {
      if (auto s = need_arg(); !s.ok()) return s.error();
      code.push_back(static_cast<std::uint8_t>(Op::kPush));
      emit_u32(static_cast<std::uint32_t>(arg.size()));
      code.insert(code.end(), arg.begin(), arg.end());
    } else if (word == "DUP") {
      code.push_back(static_cast<std::uint8_t>(Op::kDup));
      code.push_back(has_arg ? static_cast<std::uint8_t>(std::stoul(arg)) : 0);
    } else if (word == "JMP" || word == "JZ") {
      if (auto s = need_arg(); !s.ok()) return s.error();
      code.push_back(static_cast<std::uint8_t>(word == "JMP" ? Op::kJmp : Op::kJz));
      fixups.push_back(Fixup{code.size(), arg, line_no});
      emit_u32(0);
    } else {
      const auto it = kMnemonics.find(word);
      if (it == kMnemonics.end()) {
        return Error(ErrorCode::kInvalidArgument,
                     "unknown mnemonic '" + word + "' (line " +
                         std::to_string(line_no) + ")");
      }
      code.push_back(static_cast<std::uint8_t>(it->second));
    }
  }

  for (const Fixup& fixup : fixups) {
    const auto it = labels.find(fixup.label);
    if (it == labels.end()) {
      return Error(ErrorCode::kInvalidArgument,
                   "undefined label '" + fixup.label + "' (line " +
                       std::to_string(fixup.line) + ")");
    }
    for (int i = 0; i < 4; ++i) {
      code[fixup.offset + i] = static_cast<std::uint8_t>(it->second >> (8 * i));
    }
  }
  return code;
}

}  // namespace tnp::contracts
