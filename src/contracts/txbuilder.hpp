// Client-side transaction builders for every native contract method.
// Centralizes arg encodings so tests, benches, examples and the platform
// layer never hand-roll ByteWriter calls.
#pragma once

#include <string>
#include <vector>

#include "contracts/schema.hpp"
#include "ledger/transaction.hpp"

namespace tnp::contracts::txb {

namespace detail {
inline ledger::Transaction base(const std::string& contract,
                                const std::string& method, Bytes args,
                                const KeyPair& signer, std::uint64_t nonce,
                                std::uint64_t gas_limit) {
  ledger::Transaction tx;
  tx.nonce = nonce;
  tx.contract = contract;
  tx.method = method;
  tx.args = std::move(args);
  tx.gas_limit = gas_limit;
  tx.sign_with(signer);
  return tx;
}
}  // namespace detail

constexpr std::uint64_t kDefaultGas = 5'000'000;

// ------------------------------------------------------------- identity

inline ledger::Transaction register_identity(const KeyPair& signer,
                                             std::uint64_t nonce,
                                             const std::string& display_name,
                                             Role role) {
  ByteWriter w;
  w.str(display_name);
  w.u8(static_cast<std::uint8_t>(role));
  return detail::base("identity", "register", w.take(), signer, nonce,
                      kDefaultGas);
}

// ---------------------------------------------------------------- token

inline ledger::Transaction mint(const KeyPair& signer, std::uint64_t nonce,
                                const AccountId& to, std::uint64_t amount) {
  ByteWriter w;
  w.raw(to.view());
  w.u64(amount);
  return detail::base("token", "mint", w.take(), signer, nonce, kDefaultGas);
}

inline ledger::Transaction transfer(const KeyPair& signer, std::uint64_t nonce,
                                    const AccountId& to, std::uint64_t amount) {
  ByteWriter w;
  w.raw(to.view());
  w.u64(amount);
  return detail::base("token", "transfer", w.take(), signer, nonce,
                      kDefaultGas);
}

// ----------------------------------------------------------------- news

inline ledger::Transaction create_platform(const KeyPair& signer,
                                           std::uint64_t nonce,
                                           const std::string& name) {
  ByteWriter w;
  w.str(name);
  return detail::base("news", "create_platform", w.take(), signer, nonce,
                      kDefaultGas);
}

inline ledger::Transaction create_room(const KeyPair& signer,
                                       std::uint64_t nonce,
                                       const std::string& platform,
                                       const std::string& room,
                                       const std::string& topic) {
  ByteWriter w;
  w.str(platform);
  w.str(room);
  w.str(topic);
  return detail::base("news", "create_room", w.take(), signer, nonce,
                      kDefaultGas);
}

inline ledger::Transaction authorize_journalist(const KeyPair& signer,
                                                std::uint64_t nonce,
                                                const std::string& platform,
                                                const AccountId& who) {
  ByteWriter w;
  w.str(platform);
  w.raw(who.view());
  return detail::base("news", "authorize", w.take(), signer, nonce,
                      kDefaultGas);
}

inline ledger::Transaction publish(const KeyPair& signer, std::uint64_t nonce,
                                   const std::string& platform,
                                   const std::string& room,
                                   const Hash256& article_hash,
                                   const std::string& content_ref,
                                   EditType edit_type,
                                   const std::vector<Hash256>& parents) {
  ByteWriter w;
  w.str(platform);
  w.str(room);
  w.raw(article_hash.view());
  w.str(content_ref);
  w.u8(static_cast<std::uint8_t>(edit_type));
  w.u32(static_cast<std::uint32_t>(parents.size()));
  for (const auto& p : parents) w.raw(p.view());
  return detail::base("news", "publish", w.take(), signer, nonce, kDefaultGas);
}

inline ledger::Transaction refer_external(const KeyPair& signer,
                                          std::uint64_t nonce,
                                          const std::string& platform,
                                          const std::string& room,
                                          const Hash256& article_hash,
                                          const std::string& source_url) {
  ByteWriter w;
  w.str(platform);
  w.str(room);
  w.raw(article_hash.view());
  w.str(source_url);
  return detail::base("news", "refer", w.take(), signer, nonce, kDefaultGas);
}

inline ledger::Transaction comment(const KeyPair& signer, std::uint64_t nonce,
                                   const Hash256& article,
                                   const std::string& text) {
  ByteWriter w;
  w.raw(article.view());
  w.str(text);
  return detail::base("news", "comment", w.take(), signer, nonce, kDefaultGas);
}

// -------------------------------------------------------------- ranking

inline ledger::Transaction open_round(const KeyPair& signer,
                                      std::uint64_t nonce,
                                      const Hash256& article) {
  ByteWriter w;
  w.raw(article.view());
  return detail::base("ranking", "open", w.take(), signer, nonce, kDefaultGas);
}

inline ledger::Transaction vote(const KeyPair& signer, std::uint64_t nonce,
                                const Hash256& article, bool says_factual,
                                std::uint64_t stake) {
  ByteWriter w;
  w.raw(article.view());
  w.u8(says_factual ? 1 : 0);
  w.u64(stake);
  return detail::base("ranking", "vote", w.take(), signer, nonce, kDefaultGas);
}

inline ledger::Transaction close_round(const KeyPair& signer,
                                       std::uint64_t nonce,
                                       const Hash256& article) {
  ByteWriter w;
  w.raw(article.view());
  return detail::base("ranking", "close", w.take(), signer, nonce,
                      kDefaultGas);
}

// --------------------------------------------------------------- factdb

inline ledger::Transaction add_fact(const KeyPair& signer, std::uint64_t nonce,
                                    const Hash256& record_hash,
                                    const std::string& source_tag) {
  ByteWriter w;
  w.raw(record_hash.view());
  w.str(source_tag);
  return detail::base("factdb", "add", w.take(), signer, nonce, kDefaultGas);
}

// ----------------------------------------------------------- governance

inline ledger::Transaction bootstrap_governance(const KeyPair& signer,
                                                std::uint64_t nonce) {
  return detail::base("governance", "bootstrap", {}, signer, nonce,
                      kDefaultGas);
}

inline ledger::Transaction endorse(const KeyPair& signer, std::uint64_t nonce,
                                   const AccountId& who) {
  ByteWriter w;
  w.raw(who.view());
  return detail::base("governance", "endorse", w.take(), signer, nonce,
                      kDefaultGas);
}

inline ledger::Transaction flag_account(const KeyPair& signer,
                                        std::uint64_t nonce,
                                        const AccountId& who,
                                        const std::string& reason) {
  ByteWriter w;
  w.raw(who.view());
  w.str(reason);
  return detail::base("governance", "flag", w.take(), signer, nonce,
                      kDefaultGas);
}

inline ledger::Transaction slash(const KeyPair& signer, std::uint64_t nonce,
                                 const AccountId& who) {
  ByteWriter w;
  w.raw(who.view());
  return detail::base("governance", "slash", w.take(), signer, nonce,
                      kDefaultGas);
}

inline ledger::Transaction set_param(const KeyPair& signer,
                                     std::uint64_t nonce,
                                     const std::string& name,
                                     std::uint64_t value) {
  ByteWriter w;
  w.str(name);
  w.u64(value);
  return detail::base("governance", "set_param", w.take(), signer, nonce,
                      kDefaultGas);
}

// ---------------------------------------------------- detector registry

inline ledger::Transaction register_detector(const KeyPair& signer,
                                             std::uint64_t nonce,
                                             const std::string& name,
                                             const Hash256& vm_address) {
  ByteWriter w;
  w.str(name);
  w.raw(vm_address.view());
  return detail::base("detreg", "register", w.take(), signer, nonce,
                      kDefaultGas);
}

inline ledger::Transaction record_detector_outcome(const KeyPair& signer,
                                                   std::uint64_t nonce,
                                                   const std::string& name,
                                                   bool agreed) {
  ByteWriter w;
  w.str(name);
  w.u8(agreed ? 1 : 0);
  return detail::base("detreg", "record_outcome", w.take(), signer, nonce,
                      kDefaultGas);
}

inline ledger::Transaction deactivate_detector(const KeyPair& signer,
                                               std::uint64_t nonce,
                                               const std::string& name) {
  ByteWriter w;
  w.str(name);
  return detail::base("detreg", "deactivate", w.take(), signer, nonce,
                      kDefaultGas);
}

// ------------------------------------------------------------------- vm

inline ledger::Transaction deploy_code(const KeyPair& signer,
                                       std::uint64_t nonce, const Bytes& code) {
  ByteWriter w;
  w.bytes(BytesView(code));
  return detail::base("vm", "deploy", w.take(), signer, nonce, kDefaultGas);
}

inline ledger::Transaction invoke_code(const KeyPair& signer,
                                       std::uint64_t nonce,
                                       const Hash256& address,
                                       const Bytes& input) {
  ByteWriter w;
  w.raw(address.view());
  w.bytes(BytesView(input));
  return detail::base("vm", "invoke", w.take(), signer, nonce, kDefaultGas);
}

/// Deterministic VM contract address for code deployed by `deployer`.
inline Hash256 vm_address(const Bytes& code, const AccountId& deployer) {
  Sha256 h;
  h.update(BytesView(code));
  h.update(deployer.view());
  return h.finalize();
}

}  // namespace tnp::contracts::txb
