// A small deterministic stack VM for user-deployed contract code — the
// "app-store of fake-news-detection tools and policy scripts" the paper's
// ecosystem section calls for. Values are byte strings; arithmetic ops
// interpret 8-byte operands as unsigned 64-bit little-endian integers.
// Every instruction charges gas; execution is fully deterministic.
//
// A tiny line assembler (one mnemonic per line, '#' comments) makes tests
// and examples readable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "ledger/gas.hpp"

namespace tnp::contracts {

enum class Op : std::uint8_t {
  kHalt = 0x00,    // stop; top of stack (if any) is the return value
  kPush = 0x01,    // u32 length + bytes → push
  kPushInt = 0x02, // u64 immediate → push as 8-byte LE
  kPop = 0x03,
  kDup = 0x04,     // u8 depth: push copy of stack[depth from top]
  kSwap = 0x05,    // swap top two
  kAdd = 0x10,
  kSub = 0x11,
  kMul = 0x12,
  kDiv = 0x13,     // division by zero → trap
  kMod = 0x14,
  kLt = 0x15,      // push 1 or 0 (as u64)
  kGt = 0x16,
  kEq = 0x17,      // byte-wise equality of any two values
  kNot = 0x18,     // u64 logical not
  kAnd = 0x19,
  kOr = 0x1A,
  kJmp = 0x20,     // u32 absolute code offset
  kJz = 0x21,      // pop; jump if zero/empty
  kConcat = 0x30,  // pop b, a → push a||b
  kLen = 0x31,     // pop v → push len(v) as u64
  kSha256 = 0x32,  // pop v → push sha256(v) (32 bytes)
  kByteAt = 0x33,  // pop index (u64), value → push value[index] as u64; OOB traps
  kLoad = 0x40,    // pop key → push stored value (empty if absent)
  kStore = 0x41,   // pop value, key → store
  kCaller = 0x50,  // push 32-byte sender account id
  kInput = 0x51,   // push the call input
  kEmit = 0x52,    // pop data, name → emit event
};

/// Where the VM reads/writes persistent data and emits events. Bridged to
/// the ledger by the "vm" native contract; tests may use an in-memory impl.
///
/// Under optimistic parallel execution the ledger bridge routes load()
/// through the transaction's instrumented state view, so VM reads enter
/// the read set like any contract read, and gas stays deterministic on
/// re-execution: every charge is a function of the opcode stream and the
/// loaded values alone (kStore charges by value length, never by what was
/// previously stored).
class VmEnv {
 public:
  virtual ~VmEnv() = default;
  virtual Bytes load(const Bytes& key) = 0;
  virtual void store(const Bytes& key, const Bytes& value) = 0;
  virtual void emit(const std::string& name, const Bytes& data) = 0;
  [[nodiscard]] virtual Bytes caller() const = 0;
};

struct VmResult {
  Bytes output;             // top of stack at halt (empty if none)
  std::uint64_t steps = 0;  // instructions executed
};

/// Executes `code` with `input`. Traps (stack underflow, bad opcode, bad
/// jump, div-by-zero, out of gas) return an error Status; gas consumed is
/// visible through `gas`.
Expected<VmResult> vm_execute(BytesView code, BytesView input, VmEnv& env,
                              ledger::GasMeter& gas,
                              const ledger::GasCosts& costs,
                              std::uint64_t max_steps = 1'000'000);

/// Assembles mnemonic text into bytecode. Syntax, one instruction per line:
///   PUSHI 42         — integer immediate
///   PUSH  68656c6c6f — hex bytes immediate
///   PUSHS hello      — ASCII immediate
///   DUP 0 / JMP label / JZ label / label:
///   everything else: bare mnemonic (ADD, STORE, …). '#' starts a comment.
Expected<Bytes> vm_assemble(std::string_view source);

}  // namespace tnp::contracts
