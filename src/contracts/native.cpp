// Built-in platform contracts. Each encodes one mechanism from the paper:
//   identity   — verified personas with roles and reputation (Sec V)
//   token      — incentive economy for validators/creators (Sec V)
//   news       — distribution platforms, newsrooms, and the supply-chain
//                graph written as publish transactions (Secs V–VI)
//   ranking    — crowd-sourced factualness rounds with stake + reputation
//                weighting and multiplicative reputation updates (Sec V)
//   factdb     — the append-only factual database at the root of the
//                supply-chain graph (Sec VI)
//   governance — the "AI Blockchain Platform Management Act": admin,
//                endorsements, flags, parameters (Sec V)
//   vm         — user-deployed bytecode (detector/policy scripts, Sec V's
//                developer app-store)
#include <algorithm>
#include <cmath>

#include "contracts/host.hpp"
#include "contracts/schema.hpp"
#include "contracts/vm.hpp"

namespace tnp::contracts {

namespace {

Status invalid(const std::string& what) {
  return Status(ErrorCode::kInvalidArgument, what);
}
Status denied(const std::string& what) {
  return Status(ErrorCode::kPermissionDenied, what);
}
Status missing(const std::string& what) {
  return Status(ErrorCode::kNotFound, what);
}

Expected<Hash256> read_hash(ByteReader& r) {
  auto raw = r.raw(32);
  if (!raw) return raw.error();
  Hash256 h;
  std::copy(raw->begin(), raw->end(), h.bytes.begin());
  return h;
}

Expected<AccountId> read_account(ByteReader& r) { return read_hash(r); }

bool is_admin(const ledger::StateReader& state, const AccountId& who) {
  const auto admin = get_account(state, keys::gov_admin());
  return admin && *admin == who;
}

bool is_endorsed(const ledger::StateReader& state, const AccountId& who) {
  return state.contains(keys::gov_endorsed(who));
}

/// Vote weight: reputation times a concave stake factor, so wealth alone
/// cannot dominate (ablated in E14).
double vote_weight(double reputation, std::uint64_t stake) {
  return reputation * (1.0 + std::log2(1.0 + static_cast<double>(stake)));
}

// ------------------------------------------------------------- identity

class IdentityContract final : public Contract {
 public:
  std::string name() const override { return "identity"; }

  Status call(const std::string& method, ByteReader& args,
              ledger::OverlayState& state, ledger::ExecContext& ctx) override {
    if (method == "register") {
      auto display = args.str();
      auto role = args.u8();
      if (!display || !role) return invalid("register(display_name, role)");
      if (*role > static_cast<std::uint8_t>(Role::kDeveloper)) {
        return invalid("unknown role");
      }
      const std::string key = keys::profile(ctx.sender);
      if (state.contains(key)) {
        return Status(ErrorCode::kAlreadyExists, "profile exists");
      }
      Profile p;
      p.display_name = std::move(*display);
      p.role = static_cast<Role>(*role);
      if (auto s = ctx.charge(ctx.costs->state_write); !s.ok()) return s;
      state.set(key, p.encode());
      ctx.emit("identity.registered", Bytes(ctx.sender.bytes.begin(),
                                            ctx.sender.bytes.end()));
      return Status::Ok();
    }
    if (method == "set_name") {
      auto display = args.str();
      if (!display) return invalid("set_name(display_name)");
      auto profile = get_profile(state, ctx.sender);
      if (!profile) return missing("no profile");
      profile->display_name = std::move(*display);
      if (auto s = ctx.charge(ctx.costs->state_write); !s.ok()) return s;
      state.set(keys::profile(ctx.sender), profile->encode());
      return Status::Ok();
    }
    return missing("identity." + method);
  }
};

// ---------------------------------------------------------------- token

class TokenContract final : public Contract {
 public:
  std::string name() const override { return "token"; }

  Status call(const std::string& method, ByteReader& args,
              ledger::OverlayState& state, ledger::ExecContext& ctx) override {
    if (method == "mint") {
      auto to = read_account(args);
      auto amount = args.u64();
      if (!to || !amount) return invalid("mint(to, amount)");
      if (!is_admin(state, ctx.sender)) return denied("mint is admin-only");
      if (auto s = ctx.charge(2 * ctx.costs->state_write); !s.ok()) return s;
      set_u64(state, keys::token_balance(*to),
              get_u64(state, keys::token_balance(*to)) + *amount);
      set_u64(state, keys::token_supply(),
              get_u64(state, keys::token_supply()) + *amount);
      return Status::Ok();
    }
    if (method == "transfer") {
      auto to = read_account(args);
      auto amount = args.u64();
      if (!to || !amount) return invalid("transfer(to, amount)");
      const std::string from_key = keys::token_balance(ctx.sender);
      const std::uint64_t from_balance = get_u64(state, from_key);
      if (from_balance < *amount) {
        return Status(ErrorCode::kResourceExhausted, "insufficient balance");
      }
      if (auto s = ctx.charge(2 * ctx.costs->state_write); !s.ok()) return s;
      set_u64(state, from_key, from_balance - *amount);
      set_u64(state, keys::token_balance(*to),
              get_u64(state, keys::token_balance(*to)) + *amount);
      return Status::Ok();
    }
    if (method == "burn") {
      auto amount = args.u64();
      if (!amount) return invalid("burn(amount)");
      const std::string key = keys::token_balance(ctx.sender);
      const std::uint64_t balance = get_u64(state, key);
      if (balance < *amount) {
        return Status(ErrorCode::kResourceExhausted, "insufficient balance");
      }
      if (auto s = ctx.charge(2 * ctx.costs->state_write); !s.ok()) return s;
      set_u64(state, key, balance - *amount);
      set_u64(state, keys::token_supply(),
              get_u64(state, keys::token_supply()) - *amount);
      return Status::Ok();
    }
    return missing("token." + method);
  }
};

// ----------------------------------------------------------------- news

class NewsContract final : public Contract {
 public:
  std::string name() const override { return "news"; }

  Status call(const std::string& method, ByteReader& args,
              ledger::OverlayState& state, ledger::ExecContext& ctx) override {
    if (method == "create_platform") return create_platform(args, state, ctx);
    if (method == "create_room") return create_room(args, state, ctx);
    if (method == "authorize") return authorize(args, state, ctx);
    if (method == "publish") return publish(args, state, ctx);
    if (method == "refer") return refer(args, state, ctx);
    if (method == "comment") return comment(args, state, ctx);
    return missing("news." + method);
  }

 private:
  Status create_platform(ByteReader& args, ledger::OverlayState& state,
                         ledger::ExecContext& ctx) {
    auto name = args.str();
    if (!name || name->empty()) return invalid("create_platform(name)");
    if (name->find('/') != std::string::npos) {
      return invalid("platform name must not contain '/'");
    }
    if (!get_profile(state, ctx.sender)) {
      return denied("register an identity first");
    }
    const std::string key = keys::platform(*name);
    if (state.contains(key)) {
      return Status(ErrorCode::kAlreadyExists, "platform exists");
    }
    if (auto s = ctx.charge(ctx.costs->state_write); !s.ok()) return s;
    ByteWriter w;
    w.raw(ctx.sender.view());
    w.u64(ctx.block_time);
    state.set(key, w.take());
    ctx.emit("news.platform_created", to_bytes(*name));
    return Status::Ok();
  }

  Status create_room(ByteReader& args, ledger::OverlayState& state,
                     ledger::ExecContext& ctx) {
    auto platform = args.str();
    auto room = args.str();
    auto topic = args.str();
    if (!platform || !room || !topic || room->empty()) {
      return invalid("create_room(platform, room, topic)");
    }
    if (room->find('/') != std::string::npos) {
      return invalid("room name must not contain '/'");
    }
    const Bytes* platform_raw = state.get_ptr(keys::platform(*platform));
    if (!platform_raw) return missing("platform " + *platform);
    ByteReader pr{BytesView(*platform_raw)};
    auto owner = read_account(pr);
    if (!owner || *owner != ctx.sender) {
      return denied("only the platform owner creates rooms");
    }
    const std::string key = keys::room(*platform, *room);
    if (state.contains(key)) {
      return Status(ErrorCode::kAlreadyExists, "room exists");
    }
    if (auto s = ctx.charge(ctx.costs->state_write); !s.ok()) return s;
    ByteWriter w;
    w.str(*topic);
    w.raw(ctx.sender.view());
    state.set(key, w.take());
    return Status::Ok();
  }

  Status authorize(ByteReader& args, ledger::OverlayState& state,
                   ledger::ExecContext& ctx) {
    auto platform = args.str();
    auto who = read_account(args);
    if (!platform || !who) return invalid("authorize(platform, account)");
    const Bytes* platform_raw = state.get_ptr(keys::platform(*platform));
    if (!platform_raw) return missing("platform " + *platform);
    ByteReader pr{BytesView(*platform_raw)};
    auto owner = read_account(pr);
    if (!owner || *owner != ctx.sender) {
      return denied("only the platform owner authorizes journalists");
    }
    if (!get_profile(state, *who)) return missing("grantee has no profile");
    if (auto s = ctx.charge(ctx.costs->state_write); !s.ok()) return s;
    state.set(keys::journalist_auth(*platform, *who), Bytes{1});
    return Status::Ok();
  }

  Status publish(ByteReader& args, ledger::OverlayState& state,
                 ledger::ExecContext& ctx) {
    auto platform = args.str();
    auto room = args.str();
    auto article = read_hash(args);
    auto content_ref = args.str();
    auto edit = args.u8();
    auto parent_count = args.u32();
    if (!platform || !room || !article || !content_ref || !edit ||
        !parent_count) {
      return invalid("publish(platform, room, hash, ref, edit, parents)");
    }
    if (*edit > static_cast<std::uint8_t>(EditType::kMerge)) {
      return invalid("unknown edit type");
    }
    if (!state.contains(keys::room(*platform, *room))) {
      return missing("room " + *platform + "/" + *room);
    }
    // Authorization: platform owner or explicitly authorized journalist.
    const Bytes* platform_raw = state.get_ptr(keys::platform(*platform));
    if (!platform_raw) return missing("platform " + *platform);
    ByteReader pr{BytesView(*platform_raw)};
    const auto owner = read_account(pr);
    const bool authorized =
        (owner && *owner == ctx.sender) ||
        state.contains(keys::journalist_auth(*platform, ctx.sender));
    if (!authorized) return denied("not authorized to publish here");

    const std::string key = keys::article(*article);
    if (state.contains(key)) {
      return Status(ErrorCode::kAlreadyExists, "article already published");
    }

    ArticleRecord record;
    record.author = ctx.sender;
    record.platform = *platform;
    record.room = *room;
    record.content_ref = std::move(*content_ref);
    record.edit_type = static_cast<EditType>(*edit);
    record.published_at = ctx.block_time;
    record.block_height = ctx.block_height;
    record.parents.reserve(*parent_count);
    for (std::uint32_t i = 0; i < *parent_count; ++i) {
      auto parent = read_hash(args);
      if (!parent) return invalid("truncated parent list");
      if (auto s = ctx.charge(ctx.costs->state_read); !s.ok()) return s;
      // Every parent must be traceable: an on-chain article or a factual
      // record (paper Sec VI — links root in the factual database).
      if (!state.contains(keys::article(*parent)) &&
          !state.contains(keys::factdb_record(*parent))) {
        return Status(ErrorCode::kFailedPrecondition,
                      "parent " + parent->short_hex() + " is not on chain");
      }
      record.parents.push_back(*parent);
    }
    if (record.edit_type != EditType::kOriginal && record.parents.empty()) {
      return invalid("derived articles need at least one parent");
    }
    const Bytes encoded = record.encode();
    if (auto s = ctx.charge(ctx.costs->state_write +
                            ctx.costs->state_byte * encoded.size());
        !s.ok()) {
      return s;
    }
    state.set(key, encoded);
    ctx.emit("news.published",
             Bytes(article->bytes.begin(), article->bytes.end()));
    return Status::Ok();
  }

  /// Sec VI: "mechanisms for person to refer and/or report news published
  /// in other media sources into the news rooms for the discussion". Any
  /// registered identity may refer; the article enters the supply chain
  /// with NO parents (it can only trace to unverified external sources),
  /// which is exactly what makes referred content rank low until verified.
  Status refer(ByteReader& args, ledger::OverlayState& state,
               ledger::ExecContext& ctx) {
    auto platform = args.str();
    auto room = args.str();
    auto article = read_hash(args);
    auto source_url = args.str();
    if (!platform || !room || !article || !source_url) {
      return invalid("refer(platform, room, hash, source_url)");
    }
    if (!state.contains(keys::room(*platform, *room))) {
      return missing("room " + *platform + "/" + *room);
    }
    if (!get_profile(state, ctx.sender)) {
      return denied("register an identity first");
    }
    const std::string key = keys::article(*article);
    if (state.contains(key)) {
      return Status(ErrorCode::kAlreadyExists, "article already on chain");
    }
    ArticleRecord record;
    record.author = ctx.sender;  // the referrer is accountable for the post
    record.platform = *platform;
    record.room = *room;
    record.content_ref = "external:" + *source_url;
    record.edit_type = EditType::kOriginal;
    record.published_at = ctx.block_time;
    record.block_height = ctx.block_height;
    const Bytes encoded = record.encode();
    if (auto s = ctx.charge(ctx.costs->state_write +
                            ctx.costs->state_byte * encoded.size());
        !s.ok()) {
      return s;
    }
    state.set(key, encoded);
    ctx.emit("news.referred",
             Bytes(article->bytes.begin(), article->bytes.end()));
    return Status::Ok();
  }

  Status comment(ByteReader& args, ledger::OverlayState& state,
                 ledger::ExecContext& ctx) {
    auto article = read_hash(args);
    auto text = args.str();
    if (!article || !text) return invalid("comment(article, text)");
    if (!state.contains(keys::article(*article))) {
      return missing("article not found");
    }
    if (!get_profile(state, ctx.sender)) {
      return denied("register an identity first");
    }
    const std::uint64_t index =
        get_u64(state, keys::comment_count(*article));
    if (auto s = ctx.charge(2 * ctx.costs->state_write +
                            ctx.costs->state_byte * text->size());
        !s.ok()) {
      return s;
    }
    ByteWriter w;
    w.raw(ctx.sender.view());
    w.str(*text);
    w.u64(ctx.block_time);
    state.set(keys::comment(*article, index), w.take());
    set_u64(state, keys::comment_count(*article), index + 1);
    return Status::Ok();
  }
};

// -------------------------------------------------------------- ranking

class RankingContract final : public Contract {
 public:
  std::string name() const override { return "ranking"; }

  // Round record: status u8 (1 open, 2 closed), opener 32, vote_count u64.
  static constexpr std::uint8_t kOpen = 1;
  static constexpr std::uint8_t kClosed = 2;

  Status call(const std::string& method, ByteReader& args,
              ledger::OverlayState& state, ledger::ExecContext& ctx) override {
    if (method == "open") return open(args, state, ctx);
    if (method == "vote") return vote(args, state, ctx);
    if (method == "close") return close(args, state, ctx);
    return missing("ranking." + method);
  }

 private:
  struct Round {
    std::uint8_t status = 0;
    AccountId opener{};
    std::uint64_t vote_count = 0;
  };

  static std::optional<Round> get_round(const ledger::StateReader& state,
                                        const Hash256& article) {
    const Bytes* raw = state.get_ptr(keys::rank_round(article));
    if (!raw) return std::nullopt;
    ByteReader r{BytesView(*raw)};
    Round round;
    auto status = r.u8();
    auto opener = read_account(r);
    auto count = r.u64();
    if (!status || !opener || !count) return std::nullopt;
    round.status = *status;
    round.opener = *opener;
    round.vote_count = *count;
    return round;
  }

  template <typename State>
  static void put_round(State& state, const Hash256& article,
                        const Round& round) {
    ByteWriter w;
    w.u8(round.status);
    w.raw(round.opener.view());
    w.u64(round.vote_count);
    state.set(keys::rank_round(article), w.take());
  }

  Status open(ByteReader& args, ledger::OverlayState& state,
              ledger::ExecContext& ctx) {
    auto article = read_hash(args);
    if (!article) return invalid("open(article)");
    if (!state.contains(keys::article(*article))) {
      return missing("article not found");
    }
    if (get_round(state, *article)) {
      return Status(ErrorCode::kAlreadyExists, "round exists");
    }
    if (auto s = ctx.charge(ctx.costs->state_write); !s.ok()) return s;
    put_round(state, *article, Round{kOpen, ctx.sender, 0});
    ctx.emit("rank.opened",
             Bytes(article->bytes.begin(), article->bytes.end()));
    return Status::Ok();
  }

  Status vote(ByteReader& args, ledger::OverlayState& state,
              ledger::ExecContext& ctx) {
    auto article = read_hash(args);
    auto verdict = args.u8();
    auto stake = args.u64();
    if (!article || !verdict || !stake) {
      return invalid("vote(article, verdict, stake)");
    }
    if (*stake == 0) return invalid("stake must be positive");
    auto round = get_round(state, *article);
    if (!round || round->status != kOpen) {
      return Status(ErrorCode::kFailedPrecondition, "round not open");
    }
    const std::string marker = keys::rank_voted_marker(*article, ctx.sender);
    if (state.contains(marker)) {
      return Status(ErrorCode::kAlreadyExists, "already voted");
    }
    const auto profile = get_profile(state, ctx.sender);
    if (!profile) return denied("register an identity first");

    // Lock the stake.
    const std::string balance_key = keys::token_balance(ctx.sender);
    const std::uint64_t balance = get_u64(state, balance_key);
    if (balance < *stake) {
      return Status(ErrorCode::kResourceExhausted, "insufficient stake");
    }
    if (auto s = ctx.charge(4 * ctx.costs->state_write); !s.ok()) return s;
    set_u64(state, balance_key, balance - *stake);

    VoteRecord record;
    record.voter = ctx.sender;
    record.says_factual = *verdict != 0;
    record.stake = *stake;
    record.reputation_at_vote = profile->reputation;
    state.set(keys::rank_vote(*article, round->vote_count), record.encode());
    state.set(marker, Bytes{1});
    round->vote_count += 1;
    put_round(state, *article, *round);
    return Status::Ok();
  }

  Status close(ByteReader& args, ledger::OverlayState& state,
               ledger::ExecContext& ctx) {
    auto article = read_hash(args);
    if (!article) return invalid("close(article)");
    auto round = get_round(state, *article);
    if (!round || round->status != kOpen) {
      return Status(ErrorCode::kFailedPrecondition, "round not open");
    }
    if (round->opener != ctx.sender && !is_admin(state, ctx.sender)) {
      return denied("only the opener or governance closes a round");
    }

    // Tally with reputation × concave-stake weights.
    std::vector<VoteRecord> votes;
    votes.reserve(round->vote_count);
    double factual_weight = 0.0, total_weight = 0.0;
    for (std::uint64_t i = 0; i < round->vote_count; ++i) {
      if (auto s = ctx.charge(ctx.costs->state_read); !s.ok()) return s;
      const Bytes* raw = state.get_ptr(keys::rank_vote(*article, i));
      if (!raw) continue;
      auto vote = VoteRecord::decode(BytesView(*raw));
      if (!vote) continue;
      const double w = vote_weight(vote->reputation_at_vote, vote->stake);
      total_weight += w;
      if (vote->says_factual) factual_weight += w;
      votes.push_back(std::move(*vote));
    }
    const double score =
        total_weight > 0.0 ? factual_weight / total_weight : 0.5;
    const bool outcome_factual = score >= 0.5;

    // Settle: winners split the losers' stakes pro-rata by weight and get
    // their own back; reputations update multiplicatively.
    double winner_weight = 0.0;
    std::uint64_t loser_pool = 0;
    for (const auto& vote : votes) {
      if (vote.says_factual == outcome_factual) {
        winner_weight += vote_weight(vote.reputation_at_vote, vote.stake);
      } else {
        loser_pool += vote.stake;
      }
    }
    for (const auto& vote : votes) {
      if (auto s = ctx.charge(2 * ctx.costs->state_write); !s.ok()) return s;
      const bool won = vote.says_factual == outcome_factual;
      auto profile = get_profile(state, vote.voter);
      if (profile) {
        profile->reputation = won
            ? std::min(profile->reputation * 1.10, 100.0)
            : std::max(profile->reputation * 0.85, 0.01);
        state.set(keys::profile(vote.voter), profile->encode());
      }
      if (won) {
        const double w = vote_weight(vote.reputation_at_vote, vote.stake);
        const std::uint64_t bonus =
            winner_weight > 0.0
                ? static_cast<std::uint64_t>(
                      static_cast<double>(loser_pool) * (w / winner_weight))
                : 0;
        const std::string balance_key = keys::token_balance(vote.voter);
        set_u64(state, balance_key,
                get_u64(state, balance_key) + vote.stake + bonus);
      }
    }

    round->status = kClosed;
    put_round(state, *article, *round);
    set_f64(state, keys::rank_score(*article), score);
    ByteWriter ev;
    ev.raw(article->view());
    ev.f64(score);
    ctx.emit("rank.closed", ev.take());
    return Status::Ok();
  }
};

// --------------------------------------------------------------- factdb

class FactdbContract final : public Contract {
 public:
  std::string name() const override { return "factdb"; }

  Status call(const std::string& method, ByteReader& args,
              ledger::OverlayState& state, ledger::ExecContext& ctx) override {
    if (method == "add") {
      auto hash = read_hash(args);
      auto source_tag = args.str();
      if (!hash || !source_tag) return invalid("add(hash, source_tag)");
      if (!is_admin(state, ctx.sender) && !is_endorsed(state, ctx.sender)) {
        return denied("only governance or endorsed fact checkers add facts");
      }
      const std::string key = keys::factdb_record(*hash);
      if (state.contains(key)) {
        return Status(ErrorCode::kAlreadyExists, "record exists");
      }
      if (auto s = ctx.charge(ctx.costs->state_write); !s.ok()) return s;
      ByteWriter w;
      w.raw(ctx.sender.view());
      w.str(*source_tag);
      w.u64(ctx.block_time);
      state.set(key, w.take());
      ctx.emit("factdb.added", Bytes(hash->bytes.begin(), hash->bytes.end()));
      return Status::Ok();
    }
    return missing("factdb." + method);
  }
};

// ----------------------------------------------------------- governance

class GovernanceContract final : public Contract {
 public:
  std::string name() const override { return "governance"; }

  Status call(const std::string& method, ByteReader& args,
              ledger::OverlayState& state, ledger::ExecContext& ctx) override {
    if (method == "bootstrap") {
      // First caller becomes admin; idempotent failure afterwards.
      if (state.contains(keys::gov_admin())) {
        return Status(ErrorCode::kAlreadyExists, "admin already set");
      }
      if (auto s = ctx.charge(ctx.costs->state_write); !s.ok()) return s;
      set_account(state, keys::gov_admin(), ctx.sender);
      return Status::Ok();
    }
    if (method == "endorse" || method == "revoke") {
      auto who = read_account(args);
      if (!who) return invalid(method + "(account)");
      if (!is_admin(state, ctx.sender)) return denied("admin only");
      auto profile = get_profile(state, *who);
      if (!profile) return missing("no such profile");
      if (auto s = ctx.charge(2 * ctx.costs->state_write); !s.ok()) return s;
      if (method == "endorse") {
        state.set(keys::gov_endorsed(*who), Bytes{1});
        profile->verified = true;
      } else {
        state.erase(keys::gov_endorsed(*who));
        profile->verified = false;
      }
      state.set(keys::profile(*who), profile->encode());
      return Status::Ok();
    }
    if (method == "flag") {
      // Any verified identity reports a Management Act violation.
      auto who = read_account(args);
      auto reason = args.str();
      if (!who || !reason) return invalid("flag(account, reason)");
      const auto reporter = get_profile(state, ctx.sender);
      if (!reporter || !reporter->verified) {
        return denied("only verified identities flag violations");
      }
      if (auto s = ctx.charge(ctx.costs->state_write); !s.ok()) return s;
      set_u64(state, keys::gov_flags(*who),
              get_u64(state, keys::gov_flags(*who)) + 1);
      return Status::Ok();
    }
    if (method == "slash") {
      auto who = read_account(args);
      if (!who) return invalid("slash(account)");
      if (!is_admin(state, ctx.sender)) return denied("admin only");
      auto profile = get_profile(state, *who);
      if (!profile) return missing("no such profile");
      if (auto s = ctx.charge(ctx.costs->state_write); !s.ok()) return s;
      profile->reputation = std::max(profile->reputation * 0.25, 0.01);
      state.set(keys::profile(*who), profile->encode());
      return Status::Ok();
    }
    if (method == "set_param") {
      auto name = args.str();
      auto value = args.u64();
      if (!name || !value) return invalid("set_param(name, value)");
      if (!is_admin(state, ctx.sender)) return denied("admin only");
      if (auto s = ctx.charge(ctx.costs->state_write); !s.ok()) return s;
      set_u64(state, keys::gov_param(*name), *value);
      return Status::Ok();
    }
    return missing("governance." + method);
  }
};

// ---------------------------------------------------- detector registry

/// The Sec V "app-store": developers register VM-deployed detector
/// programs; governance records each detector's agreement with settled
/// ranking outcomes, which drives a multiplicative weight used by the
/// platform when blending detector opinions (and sizing developer
/// rewards).
class DetectorRegistryContract final : public Contract {
 public:
  std::string name() const override { return "detreg"; }

  Status call(const std::string& method, ByteReader& args,
              ledger::OverlayState& state, ledger::ExecContext& ctx) override {
    if (method == "register") {
      auto display_name = args.str();
      auto vm_address = read_hash(args);
      if (!display_name || display_name->empty() || !vm_address) {
        return invalid("register(name, vm_address)");
      }
      if (display_name->find('/') != std::string::npos) {
        return invalid("detector name must not contain '/'");
      }
      const auto profile = get_profile(state, ctx.sender);
      if (!profile || profile->role != Role::kDeveloper) {
        return denied("only registered developers publish detectors");
      }
      if (!state.contains(keys::vm_code(*vm_address))) {
        return missing("no code deployed at that address");
      }
      const std::string key = keys::detector(*display_name);
      if (state.contains(key)) {
        return Status(ErrorCode::kAlreadyExists, "detector name taken");
      }
      if (auto s = ctx.charge(3 * ctx.costs->state_write); !s.ok()) return s;
      DetectorRecord record;
      record.developer = ctx.sender;
      record.vm_address = *vm_address;
      record.display_name = *display_name;
      state.set(key, record.encode());
      set_f64(state, keys::detector_weight(*display_name), 1.0);
      ctx.emit("detreg.registered", to_bytes(*display_name));
      return Status::Ok();
    }
    if (method == "record_outcome") {
      auto display_name = args.str();
      auto agreed = args.u8();
      if (!display_name || !agreed) {
        return invalid("record_outcome(name, agreed)");
      }
      if (!is_admin(state, ctx.sender)) {
        return denied("only governance records detector outcomes");
      }
      if (!state.contains(keys::detector(*display_name))) {
        return missing("unknown detector");
      }
      if (auto s = ctx.charge(2 * ctx.costs->state_write); !s.ok()) return s;
      // Multiplicative weight, same family as validator reputation.
      const double weight =
          get_f64(state, keys::detector_weight(*display_name), 1.0);
      set_f64(state, keys::detector_weight(*display_name),
              std::clamp(weight * (*agreed != 0 ? 1.05 : 0.90), 0.01, 10.0));
      const Bytes* stats_raw = state.get_ptr(keys::detector_stats(*display_name));
      std::uint64_t total = 0, agreed_count = 0;
      if (stats_raw) {
        ByteReader sr{BytesView(*stats_raw)};
        total = sr.u64().value_or(0);
        agreed_count = sr.u64().value_or(0);
      }
      ByteWriter w;
      w.u64(total + 1);
      w.u64(agreed_count + (*agreed != 0 ? 1 : 0));
      state.set(keys::detector_stats(*display_name), w.take());
      return Status::Ok();
    }
    if (method == "deactivate") {
      auto display_name = args.str();
      if (!display_name) return invalid("deactivate(name)");
      const Bytes* raw = state.get_ptr(keys::detector(*display_name));
      if (!raw) return missing("unknown detector");
      auto record = DetectorRecord::decode(BytesView(*raw));
      if (!record) return Status(ErrorCode::kCorruptData, "bad record");
      if (record->developer != ctx.sender && !is_admin(state, ctx.sender)) {
        return denied("only the developer or governance deactivates");
      }
      if (auto s = ctx.charge(ctx.costs->state_write); !s.ok()) return s;
      record->active = false;
      state.set(keys::detector(*display_name), record->encode());
      return Status::Ok();
    }
    return missing("detreg." + method);
  }
};

// ------------------------------------------------------------------- vm

/// Bridges the VM to the ledger overlay, namespacing all data keys under
/// the contract address.
class LedgerVmEnv final : public VmEnv {
 public:
  LedgerVmEnv(const Hash256& address, ledger::OverlayState& state,
              ledger::ExecContext& ctx)
      : address_(address), state_(state), ctx_(ctx) {}

  Bytes load(const Bytes& key) override {
    const Bytes* v = state_.get_ptr(keys::vm_data(address_, to_hex(BytesView(key))));
    return v ? *v : Bytes{};
  }
  void store(const Bytes& key, const Bytes& value) override {
    state_.set(keys::vm_data(address_, to_hex(BytesView(key))), value);
  }
  void emit(const std::string& name, const Bytes& data) override {
    ctx_.emit("vm." + name, data);
  }
  Bytes caller() const override {
    return Bytes(ctx_.sender.bytes.begin(), ctx_.sender.bytes.end());
  }

 private:
  Hash256 address_;
  ledger::OverlayState& state_;
  ledger::ExecContext& ctx_;
};

class VmContract final : public Contract {
 public:
  std::string name() const override { return "vm"; }

  Status call(const std::string& method, ByteReader& args,
              ledger::OverlayState& state, ledger::ExecContext& ctx) override {
    if (method == "deploy") {
      auto code = args.bytes();
      if (!code || code->empty()) return invalid("deploy(code)");
      Sha256 h;
      h.update(BytesView(*code));
      h.update(ctx.sender.view());
      const Hash256 address = h.finalize();
      const std::string key = keys::vm_code(address);
      if (state.contains(key)) {
        return Status(ErrorCode::kAlreadyExists, "code already deployed");
      }
      if (auto s = ctx.charge(ctx.costs->state_write +
                              ctx.costs->state_byte * code->size());
          !s.ok()) {
        return s;
      }
      state.set(key, *code);
      ctx.emit("vm.deployed",
               Bytes(address.bytes.begin(), address.bytes.end()));
      return Status::Ok();
    }
    if (method == "invoke") {
      auto address = read_hash(args);
      auto input = args.bytes();
      if (!address || !input) return invalid("invoke(address, input)");
      // Borrowed pointer: map nodes are stable, so VM stores into the
      // overlay during execution cannot invalidate the code bytes.
      const Bytes* code = state.get_ptr(keys::vm_code(*address));
      if (!code) return missing("no code at address");
      LedgerVmEnv env(*address, state, ctx);
      auto result =
          vm_execute(BytesView(*code), BytesView(*input), env, *ctx.gas,
                     *ctx.costs);
      if (!result) return Status(result.error());
      ctx.emit("vm.return", result->output);
      return Status::Ok();
    }
    return missing("vm." + method);
  }
};

}  // namespace

// ----------------------------------------------------------------- host

void ContractHost::add(std::unique_ptr<Contract> contract) {
  const std::string name = contract->name();
  contracts_[name] = std::move(contract);
}

Status ContractHost::execute(const ledger::Transaction& tx,
                             ledger::OverlayState& state,
                             ledger::ExecContext& ctx) {
  const auto it = contracts_.find(tx.contract);
  if (it == contracts_.end()) {
    return Status(ErrorCode::kNotFound, "unknown contract " + tx.contract);
  }
  ByteReader args{BytesView(tx.args)};
  return it->second->call(tx.method, args, state, ctx);
}

std::unique_ptr<ContractHost> ContractHost::standard() {
  auto host = std::make_unique<ContractHost>();
  host->add(make_identity_contract());
  host->add(make_token_contract());
  host->add(make_news_contract());
  host->add(make_ranking_contract());
  host->add(make_factdb_contract());
  host->add(make_governance_contract());
  host->add(make_detector_registry_contract());
  host->add(make_vm_contract());
  return host;
}

std::unique_ptr<Contract> make_identity_contract() {
  return std::make_unique<IdentityContract>();
}
std::unique_ptr<Contract> make_token_contract() {
  return std::make_unique<TokenContract>();
}
std::unique_ptr<Contract> make_news_contract() {
  return std::make_unique<NewsContract>();
}
std::unique_ptr<Contract> make_ranking_contract() {
  return std::make_unique<RankingContract>();
}
std::unique_ptr<Contract> make_factdb_contract() {
  return std::make_unique<FactdbContract>();
}
std::unique_ptr<Contract> make_governance_contract() {
  return std::make_unique<GovernanceContract>();
}
std::unique_ptr<Contract> make_detector_registry_contract() {
  return std::make_unique<DetectorRegistryContract>();
}
std::unique_ptr<Contract> make_vm_contract() {
  return std::make_unique<VmContract>();
}

}  // namespace tnp::contracts
