file(REMOVE_RECURSE
  "CMakeFiles/appstore_test.dir/appstore_test.cpp.o"
  "CMakeFiles/appstore_test.dir/appstore_test.cpp.o.d"
  "appstore_test"
  "appstore_test.pdb"
  "appstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
