# Empty dependencies file for appstore_test.
# This may be replaced when dependencies are built.
