# Empty compiler generated dependencies file for ai_test.
# This may be replaced when dependencies are built.
