file(REMOVE_RECURSE
  "CMakeFiles/ai_test.dir/ai_test.cpp.o"
  "CMakeFiles/ai_test.dir/ai_test.cpp.o.d"
  "ai_test"
  "ai_test.pdb"
  "ai_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ai_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
