# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/ledger_test[1]_include.cmake")
include("/root/repo/build/tests/consensus_test[1]_include.cmake")
include("/root/repo/build/tests/contracts_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/ai_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/prediction_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/appstore_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
