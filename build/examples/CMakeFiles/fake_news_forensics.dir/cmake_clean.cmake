file(REMOVE_RECURSE
  "CMakeFiles/fake_news_forensics.dir/fake_news_forensics.cpp.o"
  "CMakeFiles/fake_news_forensics.dir/fake_news_forensics.cpp.o.d"
  "fake_news_forensics"
  "fake_news_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fake_news_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
