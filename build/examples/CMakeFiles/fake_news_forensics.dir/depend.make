# Empty dependencies file for fake_news_forensics.
# This may be replaced when dependencies are built.
