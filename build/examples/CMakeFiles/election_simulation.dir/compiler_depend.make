# Empty compiler generated dependencies file for election_simulation.
# This may be replaced when dependencies are built.
