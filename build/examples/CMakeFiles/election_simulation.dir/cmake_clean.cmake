file(REMOVE_RECURSE
  "CMakeFiles/election_simulation.dir/election_simulation.cpp.o"
  "CMakeFiles/election_simulation.dir/election_simulation.cpp.o.d"
  "election_simulation"
  "election_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/election_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
