# Empty compiler generated dependencies file for newsroom_workflow.
# This may be replaced when dependencies are built.
