file(REMOVE_RECURSE
  "CMakeFiles/newsroom_workflow.dir/newsroom_workflow.cpp.o"
  "CMakeFiles/newsroom_workflow.dir/newsroom_workflow.cpp.o.d"
  "newsroom_workflow"
  "newsroom_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newsroom_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
