file(REMOVE_RECURSE
  "CMakeFiles/detector_marketplace.dir/detector_marketplace.cpp.o"
  "CMakeFiles/detector_marketplace.dir/detector_marketplace.cpp.o.d"
  "detector_marketplace"
  "detector_marketplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
