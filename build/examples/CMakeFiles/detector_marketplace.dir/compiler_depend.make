# Empty compiler generated dependencies file for detector_marketplace.
# This may be replaced when dependencies are built.
