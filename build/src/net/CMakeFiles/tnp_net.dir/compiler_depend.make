# Empty compiler generated dependencies file for tnp_net.
# This may be replaced when dependencies are built.
