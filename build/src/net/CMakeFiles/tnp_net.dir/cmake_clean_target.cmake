file(REMOVE_RECURSE
  "libtnp_net.a"
)
