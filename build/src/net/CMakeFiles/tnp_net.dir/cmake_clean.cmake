file(REMOVE_RECURSE
  "CMakeFiles/tnp_net.dir/gossip.cpp.o"
  "CMakeFiles/tnp_net.dir/gossip.cpp.o.d"
  "CMakeFiles/tnp_net.dir/network.cpp.o"
  "CMakeFiles/tnp_net.dir/network.cpp.o.d"
  "CMakeFiles/tnp_net.dir/topology.cpp.o"
  "CMakeFiles/tnp_net.dir/topology.cpp.o.d"
  "libtnp_net.a"
  "libtnp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
