file(REMOVE_RECURSE
  "CMakeFiles/tnp_consensus.dir/cluster.cpp.o"
  "CMakeFiles/tnp_consensus.dir/cluster.cpp.o.d"
  "CMakeFiles/tnp_consensus.dir/messages.cpp.o"
  "CMakeFiles/tnp_consensus.dir/messages.cpp.o.d"
  "libtnp_consensus.a"
  "libtnp_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
