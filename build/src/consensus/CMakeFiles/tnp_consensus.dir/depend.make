# Empty dependencies file for tnp_consensus.
# This may be replaced when dependencies are built.
