file(REMOVE_RECURSE
  "libtnp_consensus.a"
)
