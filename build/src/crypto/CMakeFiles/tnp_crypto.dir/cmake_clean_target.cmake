file(REMOVE_RECURSE
  "libtnp_crypto.a"
)
