file(REMOVE_RECURSE
  "CMakeFiles/tnp_crypto.dir/hash.cpp.o"
  "CMakeFiles/tnp_crypto.dir/hash.cpp.o.d"
  "CMakeFiles/tnp_crypto.dir/merkle.cpp.o"
  "CMakeFiles/tnp_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/tnp_crypto.dir/schnorr.cpp.o"
  "CMakeFiles/tnp_crypto.dir/schnorr.cpp.o.d"
  "CMakeFiles/tnp_crypto.dir/secp256k1.cpp.o"
  "CMakeFiles/tnp_crypto.dir/secp256k1.cpp.o.d"
  "CMakeFiles/tnp_crypto.dir/signer.cpp.o"
  "CMakeFiles/tnp_crypto.dir/signer.cpp.o.d"
  "CMakeFiles/tnp_crypto.dir/u256.cpp.o"
  "CMakeFiles/tnp_crypto.dir/u256.cpp.o.d"
  "libtnp_crypto.a"
  "libtnp_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
