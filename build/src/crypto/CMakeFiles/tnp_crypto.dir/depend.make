# Empty dependencies file for tnp_crypto.
# This may be replaced when dependencies are built.
