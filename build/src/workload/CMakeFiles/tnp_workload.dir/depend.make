# Empty dependencies file for tnp_workload.
# This may be replaced when dependencies are built.
