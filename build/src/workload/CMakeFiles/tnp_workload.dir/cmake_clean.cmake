file(REMOVE_RECURSE
  "CMakeFiles/tnp_workload.dir/corpus.cpp.o"
  "CMakeFiles/tnp_workload.dir/corpus.cpp.o.d"
  "CMakeFiles/tnp_workload.dir/propagation.cpp.o"
  "CMakeFiles/tnp_workload.dir/propagation.cpp.o.d"
  "CMakeFiles/tnp_workload.dir/records.cpp.o"
  "CMakeFiles/tnp_workload.dir/records.cpp.o.d"
  "libtnp_workload.a"
  "libtnp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
