
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/corpus.cpp" "src/workload/CMakeFiles/tnp_workload.dir/corpus.cpp.o" "gcc" "src/workload/CMakeFiles/tnp_workload.dir/corpus.cpp.o.d"
  "/root/repo/src/workload/propagation.cpp" "src/workload/CMakeFiles/tnp_workload.dir/propagation.cpp.o" "gcc" "src/workload/CMakeFiles/tnp_workload.dir/propagation.cpp.o.d"
  "/root/repo/src/workload/records.cpp" "src/workload/CMakeFiles/tnp_workload.dir/records.cpp.o" "gcc" "src/workload/CMakeFiles/tnp_workload.dir/records.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tnp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tnp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tnp_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ai/CMakeFiles/tnp_ai.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tnp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tnp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
