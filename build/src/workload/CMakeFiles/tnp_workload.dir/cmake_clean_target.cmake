file(REMOVE_RECURSE
  "libtnp_workload.a"
)
