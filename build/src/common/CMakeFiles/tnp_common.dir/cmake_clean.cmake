file(REMOVE_RECURSE
  "CMakeFiles/tnp_common.dir/bytes.cpp.o"
  "CMakeFiles/tnp_common.dir/bytes.cpp.o.d"
  "CMakeFiles/tnp_common.dir/log.cpp.o"
  "CMakeFiles/tnp_common.dir/log.cpp.o.d"
  "CMakeFiles/tnp_common.dir/rng.cpp.o"
  "CMakeFiles/tnp_common.dir/rng.cpp.o.d"
  "CMakeFiles/tnp_common.dir/stats.cpp.o"
  "CMakeFiles/tnp_common.dir/stats.cpp.o.d"
  "libtnp_common.a"
  "libtnp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
