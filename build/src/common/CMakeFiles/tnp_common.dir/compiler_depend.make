# Empty compiler generated dependencies file for tnp_common.
# This may be replaced when dependencies are built.
