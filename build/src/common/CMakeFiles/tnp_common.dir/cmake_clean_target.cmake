file(REMOVE_RECURSE
  "libtnp_common.a"
)
