# Empty compiler generated dependencies file for tnp_ai.
# This may be replaced when dependencies are built.
