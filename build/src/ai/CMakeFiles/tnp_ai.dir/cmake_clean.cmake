file(REMOVE_RECURSE
  "CMakeFiles/tnp_ai.dir/classifiers.cpp.o"
  "CMakeFiles/tnp_ai.dir/classifiers.cpp.o.d"
  "CMakeFiles/tnp_ai.dir/features.cpp.o"
  "CMakeFiles/tnp_ai.dir/features.cpp.o.d"
  "CMakeFiles/tnp_ai.dir/media.cpp.o"
  "CMakeFiles/tnp_ai.dir/media.cpp.o.d"
  "libtnp_ai.a"
  "libtnp_ai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_ai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
