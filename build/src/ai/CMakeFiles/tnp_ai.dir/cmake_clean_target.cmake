file(REMOVE_RECURSE
  "libtnp_ai.a"
)
