file(REMOVE_RECURSE
  "CMakeFiles/tnp_ledger.dir/block.cpp.o"
  "CMakeFiles/tnp_ledger.dir/block.cpp.o.d"
  "CMakeFiles/tnp_ledger.dir/chain.cpp.o"
  "CMakeFiles/tnp_ledger.dir/chain.cpp.o.d"
  "CMakeFiles/tnp_ledger.dir/mempool.cpp.o"
  "CMakeFiles/tnp_ledger.dir/mempool.cpp.o.d"
  "CMakeFiles/tnp_ledger.dir/state.cpp.o"
  "CMakeFiles/tnp_ledger.dir/state.cpp.o.d"
  "CMakeFiles/tnp_ledger.dir/transaction.cpp.o"
  "CMakeFiles/tnp_ledger.dir/transaction.cpp.o.d"
  "libtnp_ledger.a"
  "libtnp_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
