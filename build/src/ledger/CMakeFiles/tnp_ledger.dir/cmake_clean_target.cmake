file(REMOVE_RECURSE
  "libtnp_ledger.a"
)
