# Empty compiler generated dependencies file for tnp_ledger.
# This may be replaced when dependencies are built.
