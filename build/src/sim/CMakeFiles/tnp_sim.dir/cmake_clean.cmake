file(REMOVE_RECURSE
  "CMakeFiles/tnp_sim.dir/latency.cpp.o"
  "CMakeFiles/tnp_sim.dir/latency.cpp.o.d"
  "CMakeFiles/tnp_sim.dir/simulator.cpp.o"
  "CMakeFiles/tnp_sim.dir/simulator.cpp.o.d"
  "libtnp_sim.a"
  "libtnp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
