file(REMOVE_RECURSE
  "libtnp_sim.a"
)
