# Empty dependencies file for tnp_sim.
# This may be replaced when dependencies are built.
