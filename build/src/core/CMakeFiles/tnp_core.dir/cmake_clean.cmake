file(REMOVE_RECURSE
  "CMakeFiles/tnp_core.dir/factdb.cpp.o"
  "CMakeFiles/tnp_core.dir/factdb.cpp.o.d"
  "CMakeFiles/tnp_core.dir/newsgraph.cpp.o"
  "CMakeFiles/tnp_core.dir/newsgraph.cpp.o.d"
  "CMakeFiles/tnp_core.dir/platform.cpp.o"
  "CMakeFiles/tnp_core.dir/platform.cpp.o.d"
  "CMakeFiles/tnp_core.dir/prediction.cpp.o"
  "CMakeFiles/tnp_core.dir/prediction.cpp.o.d"
  "CMakeFiles/tnp_core.dir/ranking.cpp.o"
  "CMakeFiles/tnp_core.dir/ranking.cpp.o.d"
  "libtnp_core.a"
  "libtnp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
