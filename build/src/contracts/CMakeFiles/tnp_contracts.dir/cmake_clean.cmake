file(REMOVE_RECURSE
  "CMakeFiles/tnp_contracts.dir/native.cpp.o"
  "CMakeFiles/tnp_contracts.dir/native.cpp.o.d"
  "CMakeFiles/tnp_contracts.dir/vm.cpp.o"
  "CMakeFiles/tnp_contracts.dir/vm.cpp.o.d"
  "libtnp_contracts.a"
  "libtnp_contracts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_contracts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
