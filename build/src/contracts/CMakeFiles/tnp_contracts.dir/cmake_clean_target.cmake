file(REMOVE_RECURSE
  "libtnp_contracts.a"
)
