
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/contracts/native.cpp" "src/contracts/CMakeFiles/tnp_contracts.dir/native.cpp.o" "gcc" "src/contracts/CMakeFiles/tnp_contracts.dir/native.cpp.o.d"
  "/root/repo/src/contracts/vm.cpp" "src/contracts/CMakeFiles/tnp_contracts.dir/vm.cpp.o" "gcc" "src/contracts/CMakeFiles/tnp_contracts.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tnp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tnp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/tnp_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tnp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
