# Empty compiler generated dependencies file for tnp_contracts.
# This may be replaced when dependencies are built.
