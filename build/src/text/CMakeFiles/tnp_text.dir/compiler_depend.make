# Empty compiler generated dependencies file for tnp_text.
# This may be replaced when dependencies are built.
