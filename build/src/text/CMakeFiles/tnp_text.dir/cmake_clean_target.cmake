file(REMOVE_RECURSE
  "libtnp_text.a"
)
