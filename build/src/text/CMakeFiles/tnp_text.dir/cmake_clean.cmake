file(REMOVE_RECURSE
  "CMakeFiles/tnp_text.dir/similarity.cpp.o"
  "CMakeFiles/tnp_text.dir/similarity.cpp.o.d"
  "CMakeFiles/tnp_text.dir/tokenize.cpp.o"
  "CMakeFiles/tnp_text.dir/tokenize.cpp.o.d"
  "libtnp_text.a"
  "libtnp_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnp_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
