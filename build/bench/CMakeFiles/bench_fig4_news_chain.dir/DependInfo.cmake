
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_news_chain.cpp" "bench/CMakeFiles/bench_fig4_news_chain.dir/bench_fig4_news_chain.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4_news_chain.dir/bench_fig4_news_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tnp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tnp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/contracts/CMakeFiles/tnp_contracts.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/tnp_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/ai/CMakeFiles/tnp_ai.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tnp_text.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tnp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tnp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tnp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tnp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
