file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_news_chain.dir/bench_fig4_news_chain.cpp.o"
  "CMakeFiles/bench_fig4_news_chain.dir/bench_fig4_news_chain.cpp.o.d"
  "bench_fig4_news_chain"
  "bench_fig4_news_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_news_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
