# Empty dependencies file for bench_fig4_news_chain.
# This may be replaced when dependencies are built.
