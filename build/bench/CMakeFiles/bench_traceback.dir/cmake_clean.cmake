file(REMOVE_RECURSE
  "CMakeFiles/bench_traceback.dir/bench_traceback.cpp.o"
  "CMakeFiles/bench_traceback.dir/bench_traceback.cpp.o.d"
  "bench_traceback"
  "bench_traceback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traceback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
