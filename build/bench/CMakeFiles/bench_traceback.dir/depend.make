# Empty dependencies file for bench_traceback.
# This may be replaced when dependencies are built.
