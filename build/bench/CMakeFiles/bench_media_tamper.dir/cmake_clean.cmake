file(REMOVE_RECURSE
  "CMakeFiles/bench_media_tamper.dir/bench_media_tamper.cpp.o"
  "CMakeFiles/bench_media_tamper.dir/bench_media_tamper.cpp.o.d"
  "bench_media_tamper"
  "bench_media_tamper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_media_tamper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
