# Empty compiler generated dependencies file for bench_media_tamper.
# This may be replaced when dependencies are built.
