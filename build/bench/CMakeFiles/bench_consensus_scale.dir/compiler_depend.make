# Empty compiler generated dependencies file for bench_consensus_scale.
# This may be replaced when dependencies are built.
