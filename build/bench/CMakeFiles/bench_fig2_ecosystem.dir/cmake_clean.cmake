file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ecosystem.dir/bench_fig2_ecosystem.cpp.o"
  "CMakeFiles/bench_fig2_ecosystem.dir/bench_fig2_ecosystem.cpp.o.d"
  "bench_fig2_ecosystem"
  "bench_fig2_ecosystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ecosystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
