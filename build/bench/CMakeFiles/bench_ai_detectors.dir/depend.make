# Empty dependencies file for bench_ai_detectors.
# This may be replaced when dependencies are built.
