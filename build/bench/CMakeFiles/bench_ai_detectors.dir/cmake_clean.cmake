file(REMOVE_RECURSE
  "CMakeFiles/bench_ai_detectors.dir/bench_ai_detectors.cpp.o"
  "CMakeFiles/bench_ai_detectors.dir/bench_ai_detectors.cpp.o.d"
  "bench_ai_detectors"
  "bench_ai_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ai_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
