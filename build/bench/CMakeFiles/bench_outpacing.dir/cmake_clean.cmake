file(REMOVE_RECURSE
  "CMakeFiles/bench_outpacing.dir/bench_outpacing.cpp.o"
  "CMakeFiles/bench_outpacing.dir/bench_outpacing.cpp.o.d"
  "bench_outpacing"
  "bench_outpacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_outpacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
