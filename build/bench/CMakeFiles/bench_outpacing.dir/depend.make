# Empty dependencies file for bench_outpacing.
# This may be replaced when dependencies are built.
