# Empty compiler generated dependencies file for bench_fig3_process_chain.
# This may be replaced when dependencies are built.
