file(REMOVE_RECURSE
  "CMakeFiles/bench_ranking_robustness.dir/bench_ranking_robustness.cpp.o"
  "CMakeFiles/bench_ranking_robustness.dir/bench_ranking_robustness.cpp.o.d"
  "bench_ranking_robustness"
  "bench_ranking_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ranking_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
