# Empty compiler generated dependencies file for bench_ranking_robustness.
# This may be replaced when dependencies are built.
