file(REMOVE_RECURSE
  "CMakeFiles/bench_expert_id.dir/bench_expert_id.cpp.o"
  "CMakeFiles/bench_expert_id.dir/bench_expert_id.cpp.o.d"
  "bench_expert_id"
  "bench_expert_id.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_expert_id.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
