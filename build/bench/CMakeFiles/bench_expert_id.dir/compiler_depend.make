# Empty compiler generated dependencies file for bench_expert_id.
# This may be replaced when dependencies are built.
